//! The API server — SMMF's deployment-layer entry point.
//!
//! "The deployment layer connects inference mechanisms with model serving
//! capabilities, incorporating an API server and a model handler" (§2.3).
//! [`ApiServer`] owns the controller and a router, and serves chat
//! requests with automatic failover. On top of the basic retry loop sits
//! the resilience layer ([`crate::resilience`]): per-worker circuit
//! breakers, exponential backoff with seeded jitter, per-request deadline
//! budgets measured in simulated µs, request hedging, load shedding, and
//! an optional fallback model tier.
//!
//! Time here is **simulated**: the server keeps a monotonic µs clock that
//! advances by each attempt's modelled latency (plus backoff pauses), and
//! callers — the chaos harness in particular — advance it further to model
//! request inter-arrival gaps. No wall clock is ever read, so a given
//! seed reproduces every decision exactly.
//!
//! Built with [`ApiServer::with_observability`], the server additionally
//! records a deterministic trace per request (`smmf.chat` root span,
//! attempt/hedge children, engine-drain spans under `chat_many`) and
//! mirrors its resilience counters into a [`dbgpt_obs`] metrics registry
//! — timestamped on the same simulated clock, so dumps are byte-identical
//! across identical runs. Every other constructor passes
//! [`ObsConfig::disabled`], which keeps the hot path byte-for-byte
//! identical to the uninstrumented server.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dbgpt_llm::catalog::{builtin_model, builtin_spec};
use dbgpt_llm::engine::{BatchEngine, EngineConfig};
use dbgpt_llm::prefix::PrefixCacheStats;
use dbgpt_llm::{Completion, GenerationParams, SharedModel};
use dbgpt_obs::{Obs, ObsConfig, Span};

use crate::controller::ModelController;
use crate::error::SmmfError;
use crate::privacy::{DeploymentMode, Locality};
use crate::resilience::{BreakerState, CircuitBreaker, ResilienceConfig, ResilienceMetrics};
use crate::rng::SplitMix64;
use crate::router::{Router, RoutingPolicy};
use crate::worker::{ModelWorker, WorkerHealth, WorkerId};

/// The SMMF API server (see module docs).
pub struct ApiServer {
    controller: ModelController,
    router: Router,
    resilience: ResilienceConfig,
    engine: EngineConfig,
    seed: u64,
    /// Simulated monotonic clock, µs.
    clock_us: AtomicU64,
    /// Per-worker circuit breakers, keyed `model/worker` (BTreeMap for
    /// deterministic iteration in state listings).
    breakers: Mutex<BTreeMap<String, CircuitBreaker>>,
    /// Requests in flight per model (admission control).
    inflight: Mutex<BTreeMap<String, u64>>,
    /// Jitter stream for backoff pauses.
    backoff_rng: Mutex<SplitMix64>,
    /// Per-worker batch engines, created lazily on first batched dispatch
    /// and keyed `model/worker` (each replica has its own KV-prefix cache,
    /// like a real serving process).
    engines: Mutex<BTreeMap<String, BatchEngine>>,
    /// Tracing + metrics handle; disabled (free) unless the server was
    /// built with [`ApiServer::with_observability`]. Spans use the
    /// simulated µs clock, so dumps are byte-identical across runs.
    obs: Obs,
    m_requests: AtomicU64,
    m_retries: AtomicU64,
    m_backoffs: AtomicU64,
    m_backoff_us: AtomicU64,
    m_deadline_exceeded: AtomicU64,
    m_shed: AtomicU64,
    m_hedges: AtomicU64,
    m_hedge_wins: AtomicU64,
    m_fallbacks: AtomicU64,
}

/// RAII admission slot: decrements the model's in-flight count on drop.
struct AdmissionGuard<'a> {
    inflight: &'a Mutex<BTreeMap<String, u64>>,
    model: String,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut m) = self.inflight.lock() {
            if let Some(c) = m.get_mut(&self.model) {
                *c = c.saturating_sub(1);
            }
        }
    }
}

impl ApiServer {
    /// Server with round-robin routing and the resilience layer off
    /// (seed-equivalent legacy behaviour).
    pub fn new(mode: DeploymentMode) -> Self {
        Self::with_policy(mode, RoutingPolicy::RoundRobin, 0)
    }

    /// Server with an explicit routing policy; resilience layer off.
    pub fn with_policy(mode: DeploymentMode, policy: RoutingPolicy, seed: u64) -> Self {
        Self::with_resilience(mode, policy, seed, ResilienceConfig::disabled())
    }

    /// Server with a routing policy and a full resilience configuration;
    /// the batch engine stays off.
    pub fn with_resilience(
        mode: DeploymentMode,
        policy: RoutingPolicy,
        seed: u64,
        resilience: ResilienceConfig,
    ) -> Self {
        Self::with_engine(mode, policy, seed, resilience, EngineConfig::disabled())
    }

    /// Full construction: routing policy, resilience configuration, and a
    /// batch-engine configuration for [`ApiServer::chat_many`]. With
    /// `EngineConfig::disabled()` every request — including `chat_many`
    /// jobs — takes exactly the sequential [`ApiServer::chat`] path.
    pub fn with_engine(
        mode: DeploymentMode,
        policy: RoutingPolicy,
        seed: u64,
        resilience: ResilienceConfig,
        engine: EngineConfig,
    ) -> Self {
        Self::with_observability(mode, policy, seed, resilience, engine, ObsConfig::disabled())
    }

    /// Everything, plus observability. With [`ObsConfig::enabled`] the
    /// server opens a `smmf.chat` / `smmf.chat_many` root span per request
    /// (attempt, hedge and engine-drain child spans below it) and mirrors
    /// the resilience counters into the metrics registry. With
    /// [`ObsConfig::disabled`] — what every other constructor passes — the
    /// hot path is byte-for-byte identical to the uninstrumented server.
    pub fn with_observability(
        mode: DeploymentMode,
        policy: RoutingPolicy,
        seed: u64,
        resilience: ResilienceConfig,
        engine: EngineConfig,
        obs: ObsConfig,
    ) -> Self {
        ApiServer {
            controller: ModelController::new(mode),
            router: Router::new(policy, seed),
            resilience,
            engine,
            seed,
            clock_us: AtomicU64::new(0),
            breakers: Mutex::new(BTreeMap::new()),
            inflight: Mutex::new(BTreeMap::new()),
            backoff_rng: Mutex::new(SplitMix64::stream(seed, 3)),
            engines: Mutex::new(BTreeMap::new()),
            obs: Obs::new(obs),
            m_requests: AtomicU64::new(0),
            m_retries: AtomicU64::new(0),
            m_backoffs: AtomicU64::new(0),
            m_backoff_us: AtomicU64::new(0),
            m_deadline_exceeded: AtomicU64::new(0),
            m_shed: AtomicU64::new(0),
            m_hedges: AtomicU64::new(0),
            m_hedge_wins: AtomicU64::new(0),
            m_fallbacks: AtomicU64::new(0),
        }
    }

    /// The controller (metadata registry).
    pub fn controller(&self) -> &ModelController {
        &self.controller
    }

    /// Mutable controller access (worker lifecycle).
    pub fn controller_mut(&mut self) -> &mut ModelController {
        &mut self.controller
    }

    /// The active resilience configuration.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// The active batch-engine configuration.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.engine
    }

    /// The observability handle: traces and metrics accumulate here when
    /// the server was built with [`ApiServer::with_observability`];
    /// otherwise it is the free disabled handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Replace the observability handle — used to share one tracer and
    /// metrics registry across the whole stack (server layer, apps, AWEL,
    /// serving) so cross-crate spans land in one trace store.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Prefix-cache counters of every batch engine spun up so far, sorted
    /// by `model/worker` key (empty until the first batched dispatch).
    pub fn prefix_cache_stats(&self) -> Vec<(String, PrefixCacheStats)> {
        self.engines
            .lock()
            .expect("engines lock")
            .iter()
            .map(|(k, e)| (k.clone(), e.cache_stats()))
            .collect()
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> u64 {
        self.clock_us.load(Ordering::Relaxed)
    }

    /// Advance the simulated clock (the chaos harness uses this to model
    /// request inter-arrival gaps; breaker cool-downs elapse against this
    /// clock).
    pub fn advance_clock(&self, us: u64) {
        self.clock_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Snapshot of the resilience counters.
    pub fn metrics(&self) -> ResilienceMetrics {
        let breaker_opens = self
            .breakers
            .lock()
            .expect("breakers lock")
            .values()
            .map(|b| b.opens())
            .sum();
        ResilienceMetrics {
            requests: self.m_requests.load(Ordering::Relaxed),
            retries: self.m_retries.load(Ordering::Relaxed),
            backoffs: self.m_backoffs.load(Ordering::Relaxed),
            backoff_us: self.m_backoff_us.load(Ordering::Relaxed),
            deadline_exceeded: self.m_deadline_exceeded.load(Ordering::Relaxed),
            shed: self.m_shed.load(Ordering::Relaxed),
            hedges: self.m_hedges.load(Ordering::Relaxed),
            hedge_wins: self.m_hedge_wins.load(Ordering::Relaxed),
            fallbacks: self.m_fallbacks.load(Ordering::Relaxed),
            breaker_opens,
        }
    }

    /// Breaker state for one worker, if a breaker exists for it yet.
    pub fn breaker_state(&self, model: &str, worker: &WorkerId) -> Option<BreakerState> {
        self.breakers
            .lock()
            .expect("breakers lock")
            .get(&breaker_key(model, worker))
            .map(|b| b.state())
    }

    /// All breaker states, sorted by `model/worker` key.
    pub fn breaker_states(&self) -> Vec<(String, BreakerState)> {
        self.breakers
            .lock()
            .expect("breakers lock")
            .iter()
            .map(|(k, b)| (k.clone(), b.state()))
            .collect()
    }

    /// Deploy `replicas` local workers of a built-in model. The hosted
    /// `proxy-gpt` model is registered with [`Locality::Remote`] —
    /// so deploying it in [`DeploymentMode::Local`] fails, which is the
    /// paper's privacy guarantee doing its job.
    pub fn deploy_builtin(&mut self, model: &str, replicas: usize) -> Result<(), SmmfError> {
        let spec = builtin_spec(model).ok_or_else(|| SmmfError::UnknownModel(model.to_string()))?;
        let locality = if spec.id.as_str() == "proxy-gpt" {
            Locality::Remote
        } else {
            Locality::Local
        };
        for i in 0..replicas.max(1) {
            let m = builtin_model(model).expect("spec exists so model exists");
            let worker =
                ModelWorker::with_faults(format!("{model}-w{i}"), m, locality, 0.0, i as u64);
            self.register_worker(worker)?;
        }
        Ok(())
    }

    /// Deploy replicas of a custom model instance (e.g. a fine-tuned
    /// Text-to-SQL model from DB-GPT-Hub). Workers are local.
    pub fn deploy_model(&mut self, model: SharedModel, replicas: usize) -> Result<(), SmmfError> {
        let name = model.id().to_string();
        for i in 0..replicas.max(1) {
            let worker = ModelWorker::new(format!("{name}-w{i}"), model.clone());
            self.register_worker(worker)?;
        }
        Ok(())
    }

    /// Register a single pre-built worker (full control: locality, faults).
    /// When a circuit breaker supervises the deployment, the worker's
    /// legacy consecutive-failure health counter is switched off so
    /// exactly one failure detector is in charge.
    pub fn register_worker(&mut self, worker: ModelWorker) -> Result<(), SmmfError> {
        if self.resilience.breaker.is_some() {
            worker.set_auto_unhealthy(false);
        }
        self.controller.register(worker)
    }

    /// Serve a chat request through the resilience pipeline: admission
    /// control, then the primary model's failover loop, then — if the
    /// primary tier is out of admissible workers or retries — the fallback
    /// model, still under the same deadline budget.
    pub fn chat(
        &self,
        model: &str,
        prompt: &str,
        params: &GenerationParams,
    ) -> Result<Completion, SmmfError> {
        let started_us = self.now_us();
        let span = self.obs.span("smmf.chat", started_us);
        self.chat_with_span(model, prompt, params, span, started_us)
    }

    /// [`ApiServer::chat`], but the `smmf.chat` span joins `parent`'s
    /// trace instead of opening a new one (when the parent is recording) —
    /// how an app-layer request root absorbs the serving spans. Callers
    /// that want counters too should share one handle via
    /// [`ApiServer::set_obs`].
    pub fn chat_under(
        &self,
        model: &str,
        prompt: &str,
        params: &GenerationParams,
        parent: &Span,
    ) -> Result<Completion, SmmfError> {
        let started_us = self.now_us();
        let span = if parent.is_recording() {
            parent.child("smmf.chat", started_us)
        } else {
            self.obs.span("smmf.chat", started_us)
        };
        self.chat_with_span(model, prompt, params, span, started_us)
    }

    /// Shared tail of [`ApiServer::chat`] / [`ApiServer::chat_under`]:
    /// run the pipeline under `span`, record outcome and latency.
    fn chat_with_span(
        &self,
        model: &str,
        prompt: &str,
        params: &GenerationParams,
        span: Span,
        started_us: u64,
    ) -> Result<Completion, SmmfError> {
        span.attr("model", model);
        let result = self.chat_inner(model, prompt, params, &span);
        match &result {
            Ok(c) => {
                self.obs.counter("smmf.requests_ok", 1);
                span.attr("outcome", "ok");
                if span.is_recording() {
                    span.attr("prompt_tokens", c.usage.prompt_tokens);
                    span.attr("completion_tokens", c.usage.completion_tokens);
                }
            }
            Err(e) => {
                self.obs.counter("smmf.requests_err", 1);
                span.attr("outcome", e.kind());
            }
        }
        if self.obs.is_enabled() || span.is_recording() {
            let now = self.now_us();
            self.obs
                .observe("smmf.request_latency_us", now.saturating_sub(started_us));
            span.end(now);
        }
        result
    }

    /// [`ApiServer::chat`] minus the root span bookkeeping (so the span
    /// also covers shed rejections and the fallback tier).
    fn chat_inner(
        &self,
        model: &str,
        prompt: &str,
        params: &GenerationParams,
        span: &Span,
    ) -> Result<Completion, SmmfError> {
        let _slot = self.admit(model)?;
        self.m_requests.fetch_add(1, Ordering::Relaxed);
        self.obs.counter("smmf.requests", 1);
        let mut spent_us = 0u64;
        let primary = self.serve_on(model, prompt, params, &mut spent_us, span);
        match (&primary, &self.resilience.fallback_model) {
            (
                Err(SmmfError::NoHealthyWorker(_)) | Err(SmmfError::RetriesExhausted { .. }),
                Some(fallback),
            ) if fallback != model => {
                self.m_fallbacks.fetch_add(1, Ordering::Relaxed);
                self.obs.counter("smmf.fallbacks", 1);
                if span.is_recording() {
                    span.event(self.now_us(), format!("fallback tier: {model} -> {fallback}"));
                }
                self.serve_on(fallback, prompt, params, &mut spent_us, span)
            }
            _ => primary,
        }
    }

    /// Serve a batch of chat requests against one model.
    ///
    /// With the engine disabled (the default) this is exactly a loop over
    /// [`ApiServer::chat`] — same outputs, same clock advance, same
    /// metrics, byte for byte. With the engine enabled, each job is routed
    /// to a worker and inferred there as usual (fault injection, worker
    /// stats and breaker accounting all still apply), but *timing* is
    /// scheduled by that worker's [`BatchEngine`]: concurrent jobs share
    /// decode steps, shared prompt prefixes hit the worker's radix cache,
    /// and the server clock advances by the longest per-worker makespan
    /// instead of the sum of sequential latencies. Completion contents are
    /// byte-identical either way. Results come back in job order.
    pub fn chat_many(
        &self,
        model: &str,
        jobs: &[(String, GenerationParams)],
    ) -> Vec<Result<Completion, SmmfError>> {
        if !self.engine.enabled {
            return jobs
                .iter()
                .map(|(prompt, params)| self.chat(model, prompt, params))
                .collect();
        }
        self.chat_many_batched(model, jobs)
    }

    /// Names of all deployed models.
    pub fn models(&self) -> Vec<&str> {
        self.controller.models()
    }

    // ---- internals -----------------------------------------------------

    /// The engine-enabled half of [`ApiServer::chat_many`] (see its docs).
    fn chat_many_batched(
        &self,
        model: &str,
        jobs: &[(String, GenerationParams)],
    ) -> Vec<Result<Completion, SmmfError>> {
        let started_us = self.now_us();
        let span = self.obs.span("smmf.chat_many", started_us);
        if span.is_recording() {
            span.attr("model", model);
            span.attr("jobs", jobs.len());
        }
        let workers = match self.controller.workers(model) {
            Ok(w) => w,
            Err(_) => {
                span.attr("outcome", "unknown_model");
                span.end(self.now_us());
                return jobs
                    .iter()
                    .map(|_| Err(SmmfError::UnknownModel(model.to_string())))
                    .collect();
            }
        };
        let mut out: Vec<Option<Result<Completion, SmmfError>>> = vec![None; jobs.len()];
        let mut engines = self.engines.lock().expect("engines lock");
        // Worker key → the (engine request id, job index) pairs routed to it.
        let mut routed: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        let now = self.now_us();
        for (job_idx, (prompt, params)) in jobs.iter().enumerate() {
            self.m_requests.fetch_add(1, Ordering::Relaxed);
            self.obs.counter("smmf.requests", 1);
            let candidates: Vec<Arc<ModelWorker>> = workers
                .iter()
                .filter(|w| w.health() == WorkerHealth::Healthy)
                .filter(|w| self.breaker_admits(model, w.id(), now))
                .cloned()
                .collect();
            let Some(worker) = self.router.pick(&candidates) else {
                out[job_idx] = Some(Err(SmmfError::NoHealthyWorker(model.to_string())));
                continue;
            };
            self.breaker_on_dispatch(model, worker.id(), now);
            // The worker produces the completion with the caller's exact
            // (prompt, params) — batching never changes content, and
            // fault injection / worker stats behave as in the chat path.
            match worker.infer(prompt, params) {
                Ok(c) => {
                    self.breaker_record(model, worker.id(), true, now);
                    let key = breaker_key(model, worker.id());
                    let engine = engines.entry(key.clone()).or_insert_with(|| {
                        let mut e = BatchEngine::for_model(worker.model().clone(), self.engine);
                        e.set_obs(self.obs.clone());
                        e
                    });
                    let req_id = engine.submit_completed(prompt.clone(), Ok(c));
                    routed.entry(key).or_default().push((req_id, job_idx));
                }
                Err(e) => {
                    // Model-level rejections count as breaker successes
                    // (the replica responded), infrastructure faults don't.
                    let responded = matches!(e, SmmfError::Model(_));
                    self.breaker_record(model, worker.id(), responded, self.now_us());
                    out[job_idx] = Some(Err(e));
                }
            }
        }
        // Drain each touched engine. Workers decode in parallel, so the
        // server clock advances by the *longest* per-worker makespan.
        let mut max_makespan_us = 0u64;
        for (key, ids) in routed {
            let engine = engines.get_mut(&key).expect("engine was just touched");
            if engine.clock_us() < now {
                engine.advance_clock(now - engine.clock_us());
            }
            let (scheduled, run) = engine.run_traced(Some(&span));
            max_makespan_us = max_makespan_us.max(run.makespan_us);
            let mut by_id: BTreeMap<usize, _> =
                scheduled.into_iter().map(|s| (s.id, s)).collect();
            for (req_id, job_idx) in ids {
                let s = by_id.remove(&req_id).expect("engine returned every request");
                out[job_idx] = Some(s.result.map_err(SmmfError::Model));
            }
        }
        self.advance_clock(max_makespan_us);
        if self.obs.is_enabled() {
            self.obs.observe("smmf.chat_many.makespan_us", max_makespan_us);
            let ok = out.iter().filter(|o| matches!(o, Some(Ok(_)))).count();
            span.attr("ok", ok);
            span.attr("err", jobs.len() - ok);
            span.end(self.now_us());
        }
        out.into_iter()
            .map(|o| o.expect("every job resolved"))
            .collect()
    }

    /// Admission control: reserve an in-flight slot or shed the request.
    fn admit(&self, model: &str) -> Result<Option<AdmissionGuard<'_>>, SmmfError> {
        let Some(shed) = self.resilience.shed else {
            return Ok(None);
        };
        let mut m = self.inflight.lock().expect("inflight lock");
        let c = m.entry(model.to_string()).or_insert(0);
        if *c >= shed.max_inflight {
            self.m_shed.fetch_add(1, Ordering::Relaxed);
            self.obs.counter("smmf.shed", 1);
            return Err(SmmfError::Overloaded {
                model: model.to_string(),
                limit: shed.max_inflight,
            });
        }
        *c += 1;
        Ok(Some(AdmissionGuard {
            inflight: &self.inflight,
            model: model.to_string(),
        }))
    }

    /// The failover loop for one model tier. `spent_us` accumulates the
    /// request's simulated cost across tiers (attempt latencies, failure
    /// charges, backoff pauses) and is checked against the deadline
    /// budget before every dispatch — an unaffordable attempt is never
    /// started.
    fn serve_on(
        &self,
        model: &str,
        prompt: &str,
        params: &GenerationParams,
        spent_us: &mut u64,
        parent: &Span,
    ) -> Result<Completion, SmmfError> {
        let workers = self.controller.workers(model)?;
        let retry = &self.resilience.retry;
        let budget = self.resilience.deadline_budget_us;
        let max_attempts = retry.max_attempts.min(workers.len().max(1));
        let mut attempted: Vec<WorkerId> = Vec::new();
        let mut last: Option<SmmfError> = None;
        for attempt in 0..max_attempts {
            // Backoff before every retry (never before the first attempt).
            if attempt > 0 {
                let pause = self.jittered_backoff_us(attempt);
                if pause > 0 {
                    *spent_us += pause;
                    self.advance_clock(pause);
                    self.m_backoffs.fetch_add(1, Ordering::Relaxed);
                    self.m_backoff_us.fetch_add(pause, Ordering::Relaxed);
                    self.obs.counter("smmf.backoffs", 1);
                    self.obs.counter("smmf.backoff_us", pause);
                    if parent.is_recording() {
                        parent.event(
                            self.now_us(),
                            format!("backoff {pause}us before attempt {}", attempt + 1),
                        );
                    }
                }
            }
            // Deadline gate: don't start an attempt the budget can't cover.
            if let Some(budget_us) = budget {
                if *spent_us >= budget_us {
                    self.m_deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    self.obs.counter("smmf.deadline_exceeded", 1);
                    if parent.is_recording() {
                        parent.event(
                            self.now_us(),
                            format!("deadline gate on {model}: spent {spent_us}us >= budget {budget_us}us"),
                        );
                    }
                    return Err(SmmfError::DeadlineExceeded {
                        model: model.to_string(),
                        budget_us,
                        spent_us: *spent_us,
                    });
                }
            }
            let now = self.now_us();
            let candidates: Vec<Arc<ModelWorker>> = workers
                .iter()
                .filter(|w| !(retry.exclude_attempted && attempted.contains(w.id())))
                .filter(|w| self.breaker_admits(model, w.id(), now))
                .cloned()
                .collect();
            let worker = match self.router.pick(&candidates) {
                Some(w) => w,
                None if self.resilience.breaker.is_none() && !retry.exclude_attempted => {
                    // Legacy path: everyone is out of rotation. Run health
                    // checks, the way a deployment's prober would, and
                    // retry once.
                    #[allow(clippy::unnecessary_fold)] // deliberate: probe every worker, no short-circuit
                    let any_revived = workers.iter().fold(false, |acc, w| w.probe() || acc);
                    match (any_revived, self.router.pick(workers)) {
                        (true, Some(w)) => w,
                        _ => {
                            return Err(last.unwrap_or_else(|| {
                                SmmfError::NoHealthyWorker(model.to_string())
                            }))
                        }
                    }
                }
                None => break, // every distinct worker attempted or gated off
            };
            let aspan = parent.child("smmf.attempt", now);
            if aspan.is_recording() {
                aspan.attr("model", model);
                aspan.attr("worker", worker.id());
                aspan.attr("attempt", attempt + 1);
            }
            self.breaker_on_dispatch(model, worker.id(), now);
            match worker.infer(prompt, params) {
                Ok(c) => {
                    let (c, effective_us) = self
                        .maybe_hedge(model, workers, &attempted, &worker, c, prompt, params, &aspan);
                    self.breaker_record(model, worker.id(), true, now);
                    *spent_us += effective_us;
                    self.advance_clock(effective_us);
                    if aspan.is_recording() {
                        aspan.attr("latency_us", effective_us);
                    }
                    // A success that lands after the deadline is still a
                    // deadline miss from the caller's point of view.
                    if let Some(budget_us) = budget {
                        if *spent_us > budget_us {
                            self.m_deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                            self.obs.counter("smmf.deadline_exceeded", 1);
                            aspan.attr("outcome", "deadline_exceeded");
                            aspan.end(self.now_us());
                            return Err(SmmfError::DeadlineExceeded {
                                model: model.to_string(),
                                budget_us,
                                spent_us: *spent_us,
                            });
                        }
                    }
                    aspan.attr("outcome", "ok");
                    aspan.end(self.now_us());
                    return Ok(c);
                }
                Err(e @ SmmfError::Model(_)) => {
                    // Caller error — failover cannot help. The replica did
                    // respond, so the breaker records a success (otherwise a
                    // half-open probe slot would be consumed with no outcome).
                    self.breaker_record(model, worker.id(), true, now);
                    aspan.attr("outcome", e.kind());
                    aspan.end(self.now_us());
                    return Err(e);
                }
                Err(e) => {
                    // A failed attempt is never free: charge its simulated
                    // cost (connect timeout / error turnaround).
                    *spent_us += retry.failure_latency_us;
                    self.advance_clock(retry.failure_latency_us);
                    self.breaker_record(model, worker.id(), false, self.now_us());
                    attempted.push(worker.id().clone());
                    if attempt + 1 < max_attempts {
                        self.m_retries.fetch_add(1, Ordering::Relaxed);
                        self.obs.counter("smmf.retries", 1);
                    }
                    aspan.attr("outcome", e.kind());
                    aspan.end(self.now_us());
                    last = Some(e);
                }
            }
        }
        match last {
            Some(e) => Err(SmmfError::RetriesExhausted {
                model: model.to_string(),
                attempts: attempted.len().max(1),
                last: e.to_string(),
            }),
            // Zero dispatches happened: nothing was admissible.
            None => Err(SmmfError::NoHealthyWorker(model.to_string())),
        }
    }

    /// Hedge a slow-but-successful response: when the primary's simulated
    /// latency exceeds the hedge delay, race the fastest other admissible
    /// worker and keep the deterministic winner (by simulated completion
    /// time). Returns the winning completion and its effective latency.
    #[allow(clippy::too_many_arguments)] // private plumbing, one call site
    fn maybe_hedge(
        &self,
        model: &str,
        workers: &[Arc<ModelWorker>],
        attempted: &[WorkerId],
        primary: &Arc<ModelWorker>,
        c: Completion,
        prompt: &str,
        params: &GenerationParams,
        parent: &Span,
    ) -> (Completion, u64) {
        let primary_us = c.simulated_latency_us;
        let Some(hedge) = self.resilience.hedge else {
            return (c, primary_us);
        };
        if primary_us <= hedge.delay_us {
            return (c, primary_us);
        }
        let now = self.now_us();
        let second = workers
            .iter()
            .filter(|w| w.id() != primary.id())
            .filter(|w| w.health() == WorkerHealth::Healthy)
            .filter(|w| !attempted.contains(w.id()))
            .filter(|w| self.breaker_admits(model, w.id(), now))
            .min_by(|a, b| {
                (a.stats().mean_latency_us(), a.id()).cmp(&(b.stats().mean_latency_us(), b.id()))
            });
        let Some(second) = second else {
            return (c, primary_us);
        };
        self.m_hedges.fetch_add(1, Ordering::Relaxed);
        self.obs.counter("smmf.hedges", 1);
        let hspan = parent.child("smmf.hedge", now);
        if hspan.is_recording() {
            hspan.attr("worker", second.id());
            hspan.attr("primary_latency_us", primary_us);
        }
        self.breaker_on_dispatch(model, second.id(), now);
        let outcome = match second.infer(prompt, params) {
            Ok(mut hedged) => {
                self.breaker_record(model, second.id(), true, now);
                let hedged_us = hedge.delay_us + hedged.simulated_latency_us;
                if hspan.is_recording() {
                    hspan.attr("hedged_latency_us", hedged_us);
                }
                if hedged_us < primary_us {
                    self.m_hedge_wins.fetch_add(1, Ordering::Relaxed);
                    self.obs.counter("smmf.hedge_wins", 1);
                    hspan.attr("outcome", "win");
                    hedged.simulated_latency_us = hedged_us;
                    (hedged, hedged_us)
                } else {
                    hspan.attr("outcome", "lose");
                    (c, primary_us)
                }
            }
            Err(_) => {
                // The hedge lost outright; the primary result stands.
                self.breaker_record(model, second.id(), false, now);
                hspan.attr("outcome", "failed");
                (c, primary_us)
            }
        };
        hspan.end(now);
        outcome
    }

    /// Backoff before 1-based retry `attempt`, with seeded jitter.
    fn jittered_backoff_us(&self, attempt: usize) -> u64 {
        let retry = &self.resilience.retry;
        let base = retry.backoff_base_us(attempt);
        if base == 0 {
            return 0;
        }
        let jitter = self
            .backoff_rng
            .lock()
            .expect("backoff rng lock")
            .gen_f64(retry.jitter_frac.max(0.0));
        (base as f64 * (1.0 + jitter)) as u64
    }

    fn breaker_admits(&self, model: &str, worker: &WorkerId, now_us: u64) -> bool {
        let Some(cfg) = &self.resilience.breaker else {
            return true;
        };
        let mut map = self.breakers.lock().expect("breakers lock");
        let key = breaker_key(model, worker);
        let seed = self.seed;
        map.entry(key.clone())
            .or_insert_with(|| CircuitBreaker::new(cfg.clone(), seed ^ fnv1a(&key)))
            .admits(now_us)
    }

    fn breaker_on_dispatch(&self, model: &str, worker: &WorkerId, now_us: u64) {
        if self.resilience.breaker.is_none() {
            return;
        }
        if let Some(b) = self
            .breakers
            .lock()
            .expect("breakers lock")
            .get_mut(&breaker_key(model, worker))
        {
            let before = b.state();
            b.on_dispatch(now_us);
            self.note_breaker_transition(before, b.state());
        }
    }

    fn breaker_record(&self, model: &str, worker: &WorkerId, success: bool, now_us: u64) {
        if self.resilience.breaker.is_none() {
            return;
        }
        if let Some(b) = self
            .breakers
            .lock()
            .expect("breakers lock")
            .get_mut(&breaker_key(model, worker))
        {
            let before = b.state();
            b.record(success, now_us);
            self.note_breaker_transition(before, b.state());
        }
    }

    /// Mirror circuit-breaker state changes into the metrics registry
    /// (a no-op branch when observability is off).
    fn note_breaker_transition(&self, before: BreakerState, after: BreakerState) {
        if before == after || !self.obs.is_enabled() {
            return;
        }
        self.obs.counter("smmf.breaker.transitions", 1);
        let name = match after {
            BreakerState::Closed => "smmf.breaker.closed",
            BreakerState::Open => "smmf.breaker.opened",
            BreakerState::HalfOpen => "smmf.breaker.half_open",
        };
        self.obs.counter(name, 1);
    }
}

fn breaker_key(model: &str, worker: &WorkerId) -> String {
    format!("{model}/{worker}")
}

/// FNV-1a over the breaker key: a deterministic per-worker seed salt.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl std::fmt::Debug for ApiServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApiServer")
            .field("controller", &self.controller)
            .field("router", &self.router)
            .field("resilience", &self.resilience.label())
            .field("engine", &self.engine)
            .field("now_us", &self.now_us())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_and_chat() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        s.deploy_builtin("sim-qwen", 2).unwrap();
        let out = s
            .chat("sim-qwen", "hello world", &GenerationParams::default())
            .unwrap();
        assert_eq!(out.model, "sim-qwen");
        assert_eq!(s.models(), vec!["sim-qwen"]);
    }

    #[test]
    fn unknown_model_rejected() {
        let s = ApiServer::new(DeploymentMode::Local);
        assert!(matches!(
            s.chat("ghost", "x", &GenerationParams::default()),
            Err(SmmfError::UnknownModel(_))
        ));
        let mut s = ApiServer::new(DeploymentMode::Local);
        assert!(s.deploy_builtin("ghost", 1).is_err());
    }

    #[test]
    fn proxy_model_blocked_in_local_mode() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        let e = s.deploy_builtin("proxy-gpt", 1).unwrap_err();
        assert!(matches!(e, SmmfError::PrivacyViolation { .. }));
        // …but fine in cloud mode.
        let mut s = ApiServer::new(DeploymentMode::Cloud);
        s.deploy_builtin("proxy-gpt", 1).unwrap();
        assert!(s.chat("proxy-gpt", "hi there", &GenerationParams::default()).is_ok());
    }

    #[test]
    fn failover_rescues_flaky_worker() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        // One always-failing worker plus one good one.
        let bad = ModelWorker::with_faults(
            "bad",
            dbgpt_llm::catalog::builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            1.0,
            0,
        );
        s.register_worker(bad).unwrap();
        s.deploy_builtin("sim-qwen", 1).unwrap();
        // Round-robin will sometimes hit `bad` first; failover must save
        // every request.
        for _ in 0..6 {
            assert!(s
                .chat("sim-qwen", "hello again", &GenerationParams::default())
                .is_ok());
        }
    }

    #[test]
    fn all_workers_failing_exhausts_retries() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        for i in 0..2 {
            let w = ModelWorker::with_faults(
                format!("bad{i}"),
                dbgpt_llm::catalog::builtin_model("sim-qwen").unwrap(),
                Locality::Local,
                1.0,
                i,
            );
            s.register_worker(w).unwrap();
        }
        let e = s
            .chat("sim-qwen", "hello", &GenerationParams::default())
            .unwrap_err();
        assert!(
            matches!(e, SmmfError::RetriesExhausted { .. } | SmmfError::NoHealthyWorker(_)),
            "{e:?}"
        );
    }

    #[test]
    fn model_errors_are_not_retried() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        s.deploy_builtin("sim-qwen", 2).unwrap();
        let e = s.chat("sim-qwen", "   ", &GenerationParams::default()).unwrap_err();
        assert!(matches!(e, SmmfError::Model(_)));
        // No worker should have been damaged.
        assert!(s.controller().has_healthy_worker("sim-qwen"));
    }

    #[test]
    fn custom_model_deployment() {
        use dbgpt_llm::{SimLlm, SimModelSpec};
        use std::sync::Arc;
        let custom: dbgpt_llm::model::SharedModel =
            Arc::new(SimLlm::with_default_skills(SimModelSpec::for_tests("my-finetune")));
        let mut s = ApiServer::new(DeploymentMode::Local);
        s.deploy_model(custom, 3).unwrap();
        assert_eq!(s.controller().workers("my-finetune").unwrap().len(), 3);
        assert!(s.chat("my-finetune", "hello", &GenerationParams::default()).is_ok());
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use crate::resilience::{BreakerConfig, HedgeConfig, RetryConfig, ShedConfig};
    use dbgpt_llm::catalog::builtin_model;

    fn flaky(id: &str, rate: f64, seed: u64) -> ModelWorker {
        ModelWorker::with_faults(
            id,
            builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            rate,
            seed,
        )
    }

    /// Sum of (served + failed) over a model's workers = dispatches made.
    fn dispatches(s: &ApiServer, model: &str) -> u64 {
        s.controller()
            .workers(model)
            .unwrap()
            .iter()
            .map(|w| {
                let st = w.stats();
                st.served + st.failed
            })
            .sum()
    }

    #[test]
    fn exhausted_deadline_rejects_without_dispatch() {
        let mut cfg = ResilienceConfig::full();
        cfg.deadline_budget_us = Some(0); // the budget is already gone
        let mut s =
            ApiServer::with_resilience(DeploymentMode::Local, RoutingPolicy::RoundRobin, 1, cfg);
        s.deploy_builtin("sim-qwen", 2).unwrap();
        let e = s.chat("sim-qwen", "hello", &GenerationParams::default()).unwrap_err();
        assert!(matches!(e, SmmfError::DeadlineExceeded { spent_us: 0, .. }), "{e:?}");
        assert_eq!(dispatches(&s, "sim-qwen"), 0, "no dispatch may start");
        assert_eq!(s.metrics().deadline_exceeded, 1);
    }

    #[test]
    fn deadline_budget_stops_failover_mid_request() {
        // Every worker fails; each failed attempt costs 5ms. With a 12ms
        // budget the third attempt is unaffordable (2×5ms + backoff ≥
        // 12ms) and must not be dispatched.
        let cfg = ResilienceConfig {
            breaker: None,
            retry: RetryConfig {
                max_attempts: 8,
                base_backoff_us: 1_000,
                max_backoff_us: 4_000,
                jitter_frac: 0.0,
                failure_latency_us: 5_000,
                exclude_attempted: true,
            },
            deadline_budget_us: Some(12_000),
            hedge: None,
            shed: None,
            fallback_model: None,
        };
        let mut s =
            ApiServer::with_resilience(DeploymentMode::Local, RoutingPolicy::RoundRobin, 1, cfg);
        for i in 0..4 {
            s.register_worker(flaky(&format!("bad{i}"), 1.0, i)).unwrap();
        }
        let e = s.chat("sim-qwen", "hello", &GenerationParams::default()).unwrap_err();
        assert!(matches!(e, SmmfError::DeadlineExceeded { .. }), "{e:?}");
        // Attempt 1 (5ms) + attempt 2 (5ms + 1ms backoff) = 11ms spent,
        // then 2ms more backoff puts 13 ≥ 12: exactly 2 dispatches.
        assert_eq!(dispatches(&s, "sim-qwen"), 2);
    }

    #[test]
    fn late_success_is_still_a_deadline_miss() {
        // A healthy worker whose latency exceeds the budget: the attempt
        // runs (the server can't know the future), but the result is a
        // DeadlineExceeded, not a success delivered after the caller gave up.
        let cfg = ResilienceConfig {
            deadline_budget_us: Some(1),
            retry: RetryConfig::legacy(),
            ..ResilienceConfig::disabled()
        };
        let mut s =
            ApiServer::with_resilience(DeploymentMode::Local, RoutingPolicy::RoundRobin, 1, cfg);
        s.deploy_builtin("sim-qwen", 1).unwrap();
        let e = s.chat("sim-qwen", "hello", &GenerationParams::default()).unwrap_err();
        assert!(matches!(e, SmmfError::DeadlineExceeded { budget_us: 1, .. }), "{e:?}");
        assert_eq!(dispatches(&s, "sim-qwen"), 1);
    }

    #[test]
    fn failover_never_redispatches_an_attempted_worker() {
        let cfg = ResilienceConfig {
            retry: RetryConfig {
                max_attempts: 10, // far more than the worker count
                base_backoff_us: 0,
                max_backoff_us: 0,
                jitter_frac: 0.0,
                failure_latency_us: 0,
                exclude_attempted: true,
            },
            ..ResilienceConfig::disabled()
        };
        let mut s =
            ApiServer::with_resilience(DeploymentMode::Local, RoutingPolicy::RoundRobin, 1, cfg);
        for i in 0..3 {
            s.register_worker(flaky(&format!("bad{i}"), 1.0, i)).unwrap();
        }
        let e = s.chat("sim-qwen", "hello", &GenerationParams::default()).unwrap_err();
        assert!(
            matches!(e, SmmfError::RetriesExhausted { attempts: 3, .. }),
            "each worker exactly once: {e:?}"
        );
        for w in s.controller().workers("sim-qwen").unwrap() {
            assert_eq!(w.stats().failed, 1, "worker {} re-dispatched", w.id());
        }
    }

    #[test]
    fn breaker_opens_then_recovers_through_half_open() {
        let cfg = ResilienceConfig {
            breaker: Some(BreakerConfig {
                window: 4,
                min_samples: 4,
                failure_rate_to_open: 0.75,
                open_cooldown_us: 100_000,
                cooldown_jitter_frac: 0.0,
                half_open_probes: 2,
            }),
            retry: RetryConfig {
                max_attempts: 1,
                base_backoff_us: 0,
                max_backoff_us: 0,
                jitter_frac: 0.0,
                failure_latency_us: 1_000,
                exclude_attempted: true,
            },
            ..ResilienceConfig::disabled()
        };
        let mut s =
            ApiServer::with_resilience(DeploymentMode::Local, RoutingPolicy::RoundRobin, 1, cfg);
        s.register_worker(flaky("w0", 1.0, 7)).unwrap();
        let wid = WorkerId::new("w0");
        // Four failures trip the breaker.
        for _ in 0..4 {
            let _ = s.chat("sim-qwen", "hello", &GenerationParams::default());
        }
        assert_eq!(s.breaker_state("sim-qwen", &wid), Some(BreakerState::Open));
        // While open: fail fast, no dispatch reaches the worker.
        let before = dispatches(&s, "sim-qwen");
        let e = s.chat("sim-qwen", "hello", &GenerationParams::default()).unwrap_err();
        assert!(matches!(e, SmmfError::NoHealthyWorker(_)), "{e:?}");
        assert_eq!(dispatches(&s, "sim-qwen"), before, "open gate must block");
        // The replica recovers; simulated time passes the cool-down.
        s.controller().workers("sim-qwen").unwrap()[0].set_failure_rate(0.0);
        s.advance_clock(200_000);
        assert!(s.chat("sim-qwen", "hello", &GenerationParams::default()).is_ok());
        assert_eq!(
            s.breaker_state("sim-qwen", &wid),
            Some(BreakerState::HalfOpen),
            "one probe success of two"
        );
        assert!(s.chat("sim-qwen", "hello", &GenerationParams::default()).is_ok());
        assert_eq!(s.breaker_state("sim-qwen", &wid), Some(BreakerState::Closed));
        assert_eq!(s.metrics().breaker_opens, 1);
    }

    #[test]
    fn fallback_model_serves_when_primary_tier_is_down() {
        use dbgpt_llm::{SimLlm, SimModelSpec};
        use std::sync::Arc;
        let cfg = ResilienceConfig {
            retry: RetryConfig {
                max_attempts: 4,
                base_backoff_us: 0,
                max_backoff_us: 0,
                jitter_frac: 0.0,
                failure_latency_us: 0,
                exclude_attempted: true,
            },
            fallback_model: Some("tiny-fallback".into()),
            ..ResilienceConfig::disabled()
        };
        let mut s =
            ApiServer::with_resilience(DeploymentMode::Local, RoutingPolicy::RoundRobin, 1, cfg);
        s.register_worker(flaky("dead0", 1.0, 0)).unwrap();
        s.register_worker(flaky("dead1", 1.0, 1)).unwrap();
        let tiny: dbgpt_llm::SharedModel =
            Arc::new(SimLlm::with_default_skills(SimModelSpec::for_tests("tiny-fallback")));
        s.deploy_model(tiny, 1).unwrap();
        let out = s.chat("sim-qwen", "hello", &GenerationParams::default()).unwrap();
        assert_eq!(out.model, "tiny-fallback", "degraded tier must answer");
        assert_eq!(s.metrics().fallbacks, 1);
    }

    #[test]
    fn shedding_rejects_beyond_the_inflight_limit() {
        let cfg = ResilienceConfig {
            shed: Some(ShedConfig { max_inflight: 0 }),
            ..ResilienceConfig::disabled()
        };
        let mut s =
            ApiServer::with_resilience(DeploymentMode::Local, RoutingPolicy::RoundRobin, 1, cfg);
        s.deploy_builtin("sim-qwen", 1).unwrap();
        let e = s.chat("sim-qwen", "hello", &GenerationParams::default()).unwrap_err();
        assert!(matches!(e, SmmfError::Overloaded { limit: 0, .. }), "{e:?}");
        assert_eq!(s.metrics().shed, 1);
        assert_eq!(dispatches(&s, "sim-qwen"), 0);
    }

    #[test]
    fn shedding_slot_is_released_after_each_request() {
        let cfg = ResilienceConfig {
            shed: Some(ShedConfig { max_inflight: 1 }),
            ..ResilienceConfig::disabled()
        };
        let mut s =
            ApiServer::with_resilience(DeploymentMode::Local, RoutingPolicy::RoundRobin, 1, cfg);
        s.deploy_builtin("sim-qwen", 1).unwrap();
        // Sequential requests each fit in the single slot.
        for _ in 0..5 {
            assert!(s.chat("sim-qwen", "hello", &GenerationParams::default()).is_ok());
        }
        assert_eq!(s.metrics().shed, 0);
    }

    #[test]
    fn hedge_rescues_a_slow_primary() {
        let cfg = ResilienceConfig {
            hedge: Some(HedgeConfig { delay_us: 50_000 }),
            ..ResilienceConfig::disabled()
        };
        let mut s =
            ApiServer::with_resilience(DeploymentMode::Local, RoutingPolicy::LeastLatency, 1, cfg);
        s.deploy_builtin("sim-qwen", 2).unwrap();
        // Spike replica w0 (least-latency picks it first: both cold, id order).
        s.controller().workers("sim-qwen").unwrap()[0].set_latency_factor(100.0);
        let out = s.chat("sim-qwen", "hello there", &GenerationParams::default()).unwrap();
        let m = s.metrics();
        assert_eq!(m.hedges, 1);
        assert_eq!(m.hedge_wins, 1, "the healthy replica must win the race");
        // Winner's effective latency = hedge delay + its own latency, far
        // below the spiked primary's.
        let fast = s.controller().workers("sim-qwen").unwrap()[1].stats().mean_latency_us();
        assert_eq!(out.simulated_latency_us, 50_000 + fast);
    }

    #[test]
    fn same_seed_same_outcomes() {
        let run = |seed: u64| {
            // Full mechanisms minus the deadline budget: models with large
            // simulated latencies would otherwise turn every outcome into
            // DeadlineExceeded and mask the seed-dependence this asserts.
            let mut cfg = ResilienceConfig::full();
            cfg.deadline_budget_us = None;
            let mut s = ApiServer::with_resilience(
                DeploymentMode::Local,
                RoutingPolicy::Weighted,
                seed,
                cfg,
            );
            for i in 0..3 {
                s.register_worker(flaky(&format!("w{i}"), 0.5, seed + i)).unwrap();
            }
            let mut outcomes = Vec::new();
            for _ in 0..40 {
                s.advance_clock(10_000);
                outcomes.push(
                    s.chat("sim-qwen", "hello", &GenerationParams::default())
                        .map(|c| c.simulated_latency_us)
                        .map_err(|e| e.kind()),
                );
            }
            (outcomes, s.metrics())
        };
        assert_eq!(run(11), run(11), "same seed must replay identically");
        assert_ne!(run(11).0, run(12).0, "different seed must differ");
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use dbgpt_llm::engine::EngineConfig;

    fn jobs(n: usize) -> Vec<(String, GenerationParams)> {
        let system = "### Task: chat\nYou are DB-GPT, a data analysis copilot \
                      serving the analytics team. Answer precisely.";
        (0..n)
            .map(|i| {
                (
                    format!("{system}\nUser question {i}: explain join ordering"),
                    GenerationParams::default(),
                )
            })
            .collect()
    }

    fn server_with(engine: EngineConfig) -> ApiServer {
        let mut s = ApiServer::with_engine(
            DeploymentMode::Local,
            RoutingPolicy::RoundRobin,
            1,
            ResilienceConfig::disabled(),
            engine,
        );
        s.deploy_builtin("sim-qwen", 2).unwrap();
        s
    }

    #[test]
    fn disabled_engine_chat_many_is_the_sequential_path_byte_for_byte() {
        let batch = server_with(EngineConfig::disabled());
        let type_check: &EngineConfig = batch.engine_config();
        assert!(!type_check.enabled);
        let seq = server_with(EngineConfig::disabled());
        let js = jobs(6);
        let many = batch.chat_many("sim-qwen", &js);
        let one_by_one: Vec<_> = js
            .iter()
            .map(|(p, params)| seq.chat("sim-qwen", p, params))
            .collect();
        assert_eq!(many, one_by_one, "disabled engine must change nothing");
        assert_eq!(batch.now_us(), seq.now_us(), "same clock advance");
        assert_eq!(batch.metrics(), seq.metrics());
        assert!(batch.prefix_cache_stats().is_empty(), "no engine spun up");
    }

    #[test]
    fn batched_chat_many_keeps_completions_and_compresses_time() {
        let batched = server_with(EngineConfig::full());
        let sequential = server_with(EngineConfig::disabled());
        let js = jobs(8);
        let fast = batched.chat_many("sim-qwen", &js);
        let slow = sequential.chat_many("sim-qwen", &js);
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(
                f.as_ref().unwrap(),
                s.as_ref().unwrap(),
                "batching must never change completion content"
            );
        }
        assert!(
            batched.now_us() < sequential.now_us(),
            "batched makespan {}µs must beat sequential {}µs",
            batched.now_us(),
            sequential.now_us()
        );
        let hit_tokens: u64 = batched
            .prefix_cache_stats()
            .iter()
            .map(|(_, st)| st.hit_tokens)
            .sum();
        assert!(hit_tokens > 0, "shared prompt prefixes must hit the cache");
    }

    #[test]
    fn batched_model_errors_pass_through_in_job_order() {
        let s = server_with(EngineConfig::full());
        let mut js = jobs(3);
        js.insert(1, ("   ".to_string(), GenerationParams::default()));
        let out = s.chat_many("sim-qwen", &js);
        assert_eq!(out.len(), 4);
        assert!(matches!(out[1], Err(SmmfError::Model(_))));
        for (i, r) in out.iter().enumerate() {
            if i != 1 {
                assert!(r.is_ok(), "job {i} should succeed: {r:?}");
            }
        }
    }

    #[test]
    fn batched_unknown_model_rejects_every_job() {
        let s = server_with(EngineConfig::full());
        let out = s.chat_many("ghost", &jobs(2));
        assert_eq!(out.len(), 2);
        for r in out {
            assert!(matches!(r, Err(SmmfError::UnknownModel(_))));
        }
    }

    #[test]
    fn batched_dispatch_is_deterministic() {
        let run = || {
            let s = server_with(EngineConfig::full());
            let out = s.chat_many("sim-qwen", &jobs(6));
            (
                out.into_iter().map(|r| r.unwrap().text).collect::<Vec<_>>(),
                s.now_us(),
            )
        };
        assert_eq!(run(), run(), "same seed, same batch, same schedule");
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;
    use crate::resilience::HedgeConfig;
    use dbgpt_llm::engine::EngineConfig;

    fn observed(resilience: ResilienceConfig, engine: EngineConfig) -> ApiServer {
        let mut s = ApiServer::with_observability(
            DeploymentMode::Local,
            RoutingPolicy::LeastLatency,
            1,
            resilience,
            engine,
            ObsConfig::enabled(42),
        );
        s.deploy_builtin("sim-qwen", 2).unwrap();
        s
    }

    #[test]
    fn default_constructors_keep_observability_off() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        s.deploy_builtin("sim-qwen", 1).unwrap();
        s.chat("sim-qwen", "hello", &GenerationParams::default()).unwrap();
        assert!(!s.obs().is_enabled());
        assert_eq!(s.obs().span_count(), 0);
        assert_eq!(s.obs().metrics_json(), Obs::disabled().metrics_json());
    }

    #[test]
    fn chat_records_a_root_span_with_attempt_children() {
        let s = observed(ResilienceConfig::disabled(), EngineConfig::disabled());
        s.chat("sim-qwen", "hello world", &GenerationParams::default()).unwrap();
        let spans = s.obs().finished_spans();
        let root = spans.iter().find(|r| r.name == "smmf.chat").expect("root span");
        assert_eq!(root.attr("model"), Some("sim-qwen"));
        assert_eq!(root.attr("outcome"), Some("ok"));
        let attempt = spans.iter().find(|r| r.name == "smmf.attempt").expect("attempt");
        assert_eq!(attempt.parent, Some(root.id));
        assert_eq!(attempt.attr("outcome"), Some("ok"));
        assert_eq!(s.obs().counter_value("smmf.requests"), 1);
        assert_eq!(s.obs().counter_value("smmf.requests_ok"), 1);
    }

    #[test]
    fn hedge_span_and_mirrored_counters() {
        let cfg = ResilienceConfig {
            hedge: Some(HedgeConfig { delay_us: 50_000 }),
            ..ResilienceConfig::disabled()
        };
        let s = observed(cfg, EngineConfig::disabled());
        s.controller().workers("sim-qwen").unwrap()[0].set_latency_factor(100.0);
        s.chat("sim-qwen", "hello there", &GenerationParams::default()).unwrap();
        let spans = s.obs().finished_spans();
        let hedge = spans.iter().find(|r| r.name == "smmf.hedge").expect("hedge span");
        assert_eq!(hedge.attr("outcome"), Some("win"));
        let attempt = spans.iter().find(|r| r.name == "smmf.attempt").unwrap();
        assert_eq!(hedge.parent, Some(attempt.id));
        let m = s.metrics();
        assert_eq!(s.obs().counter_value("smmf.hedges"), m.hedges);
        assert_eq!(s.obs().counter_value("smmf.hedge_wins"), m.hedge_wins);
    }

    #[test]
    fn chat_many_span_parents_the_engine_drain() {
        let s = observed(ResilienceConfig::disabled(), EngineConfig::full());
        let jobs: Vec<(String, GenerationParams)> = (0..4)
            .map(|i| (format!("shared prefix, question {i}"), GenerationParams::default()))
            .collect();
        for r in s.chat_many("sim-qwen", &jobs) {
            r.unwrap();
        }
        let spans = s.obs().finished_spans();
        let root = spans.iter().find(|r| r.name == "smmf.chat_many").expect("root");
        assert_eq!(root.attr("ok"), Some("4"));
        let drain = spans.iter().find(|r| r.name == "llm.engine.run").expect("drain");
        assert_eq!(drain.parent, Some(root.id));
        assert_eq!(s.obs().counter_value("smmf.requests"), 4);
        assert!(s.obs().counter_value("llm.engine.succeeded") >= 4);
    }

    #[test]
    fn enabled_observability_never_changes_outcomes_or_the_clock() {
        let run = |obs: ObsConfig| {
            let mut s = ApiServer::with_observability(
                DeploymentMode::Local,
                RoutingPolicy::Weighted,
                9,
                ResilienceConfig::full(),
                EngineConfig::disabled(),
                obs,
            );
            s.deploy_builtin("sim-qwen", 3).unwrap();
            let mut outcomes = Vec::new();
            for _ in 0..25 {
                s.advance_clock(5_000);
                outcomes.push(
                    s.chat("sim-qwen", "hello", &GenerationParams::default())
                        .map(|c| c.text)
                        .map_err(|e| e.kind()),
                );
            }
            (outcomes, s.now_us(), s.metrics())
        };
        assert_eq!(
            run(ObsConfig::disabled()),
            run(ObsConfig::enabled(7)),
            "observability must be invisible to request semantics"
        );
    }

    #[test]
    fn two_enabled_runs_dump_identical_bytes() {
        let run = || {
            let s = observed(ResilienceConfig::full(), EngineConfig::disabled());
            for _ in 0..10 {
                s.advance_clock(3_000);
                let _ = s.chat("sim-qwen", "hello", &GenerationParams::default());
            }
            (s.obs().trace_json(), s.obs().metrics_json())
        };
        assert_eq!(run(), run(), "same seed must dump byte-identical traces");
    }
}
