//! The API server — SMMF's deployment-layer entry point.
//!
//! "The deployment layer connects inference mechanisms with model serving
//! capabilities, incorporating an API server and a model handler" (§2.3).
//! [`ApiServer`] owns the controller and a router, and serves chat
//! requests with automatic failover: when a worker fails, the request is
//! retried on the remaining healthy workers before an error is returned.

use dbgpt_llm::catalog::{builtin_model, builtin_spec};
use dbgpt_llm::{Completion, GenerationParams, SharedModel};

use crate::controller::ModelController;
use crate::error::SmmfError;
use crate::privacy::{DeploymentMode, Locality};
use crate::router::{Router, RoutingPolicy};
use crate::worker::ModelWorker;

/// Upper bound on failover attempts per request.
const MAX_ATTEMPTS: usize = 4;

/// The SMMF API server (see module docs).
pub struct ApiServer {
    controller: ModelController,
    router: Router,
}

impl ApiServer {
    /// Server with round-robin routing.
    pub fn new(mode: DeploymentMode) -> Self {
        ApiServer {
            controller: ModelController::new(mode),
            router: Router::new(RoutingPolicy::RoundRobin, 0),
        }
    }

    /// Server with an explicit routing policy.
    pub fn with_policy(mode: DeploymentMode, policy: RoutingPolicy, seed: u64) -> Self {
        ApiServer {
            controller: ModelController::new(mode),
            router: Router::new(policy, seed),
        }
    }

    /// The controller (metadata registry).
    pub fn controller(&self) -> &ModelController {
        &self.controller
    }

    /// Mutable controller access (worker lifecycle).
    pub fn controller_mut(&mut self) -> &mut ModelController {
        &mut self.controller
    }

    /// Deploy `replicas` local workers of a built-in model. The hosted
    /// `proxy-gpt` model is registered with [`Locality::Remote`] —
    /// so deploying it in [`DeploymentMode::Local`] fails, which is the
    /// paper's privacy guarantee doing its job.
    pub fn deploy_builtin(&mut self, model: &str, replicas: usize) -> Result<(), SmmfError> {
        let spec = builtin_spec(model).ok_or_else(|| SmmfError::UnknownModel(model.to_string()))?;
        let locality = if spec.id.as_str() == "proxy-gpt" {
            Locality::Remote
        } else {
            Locality::Local
        };
        for i in 0..replicas.max(1) {
            let m = builtin_model(model).expect("spec exists so model exists");
            let worker =
                ModelWorker::with_faults(format!("{model}-w{i}"), m, locality, 0.0, i as u64);
            self.controller.register(worker)?;
        }
        Ok(())
    }

    /// Deploy replicas of a custom model instance (e.g. a fine-tuned
    /// Text-to-SQL model from DB-GPT-Hub). Workers are local.
    pub fn deploy_model(&mut self, model: SharedModel, replicas: usize) -> Result<(), SmmfError> {
        let name = model.id().to_string();
        for i in 0..replicas.max(1) {
            let worker = ModelWorker::new(format!("{name}-w{i}"), model.clone());
            self.controller.register(worker)?;
        }
        Ok(())
    }

    /// Register a single pre-built worker (full control: locality, faults).
    pub fn register_worker(&mut self, worker: ModelWorker) -> Result<(), SmmfError> {
        self.controller.register(worker)
    }

    /// Serve a chat request with failover.
    pub fn chat(
        &self,
        model: &str,
        prompt: &str,
        params: &GenerationParams,
    ) -> Result<Completion, SmmfError> {
        let workers = self.controller.workers(model)?;
        let mut last: Option<SmmfError> = None;
        for attempt in 0..MAX_ATTEMPTS.min(workers.len().max(1)) {
            let worker = match self.router.pick(workers) {
                Some(w) => w,
                None => {
                    // Everyone is out of rotation: run health checks, the
                    // way a deployment's prober would, and retry once.
                    #[allow(clippy::unnecessary_fold)] // deliberate: probe every worker, no short-circuit
                    let any_revived = workers.iter().fold(false, |acc, w| w.probe() || acc);
                    match (any_revived, self.router.pick(workers)) {
                        (true, Some(w)) => w,
                        _ => {
                            return Err(last.unwrap_or_else(|| {
                                SmmfError::NoHealthyWorker(model.to_string())
                            }))
                        }
                    }
                }
            };
            match worker.infer(prompt, params) {
                Ok(c) => return Ok(c),
                Err(e @ SmmfError::Model(_)) => {
                    // Caller error — failover cannot help.
                    return Err(e);
                }
                Err(e) => {
                    last = Some(e);
                    let _ = attempt;
                }
            }
        }
        Err(SmmfError::RetriesExhausted {
            model: model.to_string(),
            attempts: MAX_ATTEMPTS.min(workers.len().max(1)),
            last: last
                .map(|e| e.to_string())
                .unwrap_or_else(|| "no workers".into()),
        })
    }

    /// Names of all deployed models.
    pub fn models(&self) -> Vec<&str> {
        self.controller.models()
    }
}

impl std::fmt::Debug for ApiServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApiServer")
            .field("controller", &self.controller)
            .field("router", &self.router)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_and_chat() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        s.deploy_builtin("sim-qwen", 2).unwrap();
        let out = s
            .chat("sim-qwen", "hello world", &GenerationParams::default())
            .unwrap();
        assert_eq!(out.model, "sim-qwen");
        assert_eq!(s.models(), vec!["sim-qwen"]);
    }

    #[test]
    fn unknown_model_rejected() {
        let s = ApiServer::new(DeploymentMode::Local);
        assert!(matches!(
            s.chat("ghost", "x", &GenerationParams::default()),
            Err(SmmfError::UnknownModel(_))
        ));
        let mut s = ApiServer::new(DeploymentMode::Local);
        assert!(s.deploy_builtin("ghost", 1).is_err());
    }

    #[test]
    fn proxy_model_blocked_in_local_mode() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        let e = s.deploy_builtin("proxy-gpt", 1).unwrap_err();
        assert!(matches!(e, SmmfError::PrivacyViolation { .. }));
        // …but fine in cloud mode.
        let mut s = ApiServer::new(DeploymentMode::Cloud);
        s.deploy_builtin("proxy-gpt", 1).unwrap();
        assert!(s.chat("proxy-gpt", "hi there", &GenerationParams::default()).is_ok());
    }

    #[test]
    fn failover_rescues_flaky_worker() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        // One always-failing worker plus one good one.
        let bad = ModelWorker::with_faults(
            "bad",
            dbgpt_llm::catalog::builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            1.0,
            0,
        );
        s.register_worker(bad).unwrap();
        s.deploy_builtin("sim-qwen", 1).unwrap();
        // Round-robin will sometimes hit `bad` first; failover must save
        // every request.
        for _ in 0..6 {
            assert!(s
                .chat("sim-qwen", "hello again", &GenerationParams::default())
                .is_ok());
        }
    }

    #[test]
    fn all_workers_failing_exhausts_retries() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        for i in 0..2 {
            let w = ModelWorker::with_faults(
                format!("bad{i}"),
                dbgpt_llm::catalog::builtin_model("sim-qwen").unwrap(),
                Locality::Local,
                1.0,
                i,
            );
            s.register_worker(w).unwrap();
        }
        let e = s
            .chat("sim-qwen", "hello", &GenerationParams::default())
            .unwrap_err();
        assert!(
            matches!(e, SmmfError::RetriesExhausted { .. } | SmmfError::NoHealthyWorker(_)),
            "{e:?}"
        );
    }

    #[test]
    fn model_errors_are_not_retried() {
        let mut s = ApiServer::new(DeploymentMode::Local);
        s.deploy_builtin("sim-qwen", 2).unwrap();
        let e = s.chat("sim-qwen", "   ", &GenerationParams::default()).unwrap_err();
        assert!(matches!(e, SmmfError::Model(_)));
        // No worker should have been damaged.
        assert!(s.controller().has_healthy_worker("sim-qwen"));
    }

    #[test]
    fn custom_model_deployment() {
        use dbgpt_llm::{SimLlm, SimModelSpec};
        use std::sync::Arc;
        let custom: dbgpt_llm::model::SharedModel =
            Arc::new(SimLlm::with_default_skills(SimModelSpec::for_tests("my-finetune")));
        let mut s = ApiServer::new(DeploymentMode::Local);
        s.deploy_model(custom, 3).unwrap();
        assert_eq!(s.controller().workers("my-finetune").unwrap().len(), 3);
        assert!(s.chat("my-finetune", "hello", &GenerationParams::default()).is_ok());
    }
}
