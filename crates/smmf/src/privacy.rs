//! Privacy mode: the paper's core SMMF guarantee.
//!
//! "SMMF … enables local execution of users' own LLMs to ensure data
//! privacy and security" and "All the interactions among users, LLMs and
//! data are performed locally, which definitely promises users' privacy"
//! (§1, §2.3). Here that guarantee is a *checked invariant*: in
//! [`DeploymentMode::Local`], registering any worker whose [`Locality`] is
//! not `Local` is rejected, so no prompt can ever be routed off-machine.

/// Where a worker physically runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locality {
    /// Same machine / user-controlled environment.
    Local,
    /// A user-controlled cluster node (simulated Ray deployment).
    Cluster,
    /// A third-party endpoint (e.g. a hosted proxy model).
    Remote,
}

/// The serving privacy posture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentMode {
    /// Strict privacy: only [`Locality::Local`] workers may serve.
    Local,
    /// Distributed within the user's own infrastructure: `Local` and
    /// `Cluster` allowed, `Remote` rejected.
    Distributed,
    /// Anything goes (explicitly opting out of the privacy guarantee,
    /// e.g. to use the hosted proxy model).
    Cloud,
}

impl DeploymentMode {
    /// Is a worker with the given locality admissible under this mode?
    pub fn admits(&self, locality: Locality) -> bool {
        match self {
            DeploymentMode::Local => locality == Locality::Local,
            DeploymentMode::Distributed => locality != Locality::Remote,
            DeploymentMode::Cloud => true,
        }
    }

    /// Does this mode guarantee prompts never leave user infrastructure?
    pub fn is_private(&self) -> bool {
        !matches!(self, DeploymentMode::Cloud)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_mode_admits_only_local() {
        let m = DeploymentMode::Local;
        assert!(m.admits(Locality::Local));
        assert!(!m.admits(Locality::Cluster));
        assert!(!m.admits(Locality::Remote));
    }

    #[test]
    fn distributed_mode_rejects_remote_only() {
        let m = DeploymentMode::Distributed;
        assert!(m.admits(Locality::Local));
        assert!(m.admits(Locality::Cluster));
        assert!(!m.admits(Locality::Remote));
    }

    #[test]
    fn cloud_mode_admits_all() {
        let m = DeploymentMode::Cloud;
        assert!(m.admits(Locality::Remote));
    }

    #[test]
    fn privacy_flag() {
        assert!(DeploymentMode::Local.is_private());
        assert!(DeploymentMode::Distributed.is_private());
        assert!(!DeploymentMode::Cloud.is_private());
    }
}
