#![warn(missing_docs)]

//! # dbgpt-smmf — the Service-oriented Multi-model Management Framework
//!
//! Implements SMMF as described in paper §2.3: "SMMF is underpinned by two
//! core components: the model inference layer and the model deployment
//! layer. … At its core, the model controller manages metadata, integrating
//! the deployment process, while the model worker establishes connectivity
//! with inference and infrastructure."
//!
//! Mapping to modules:
//!
//! - **Model inference layer** — any [`dbgpt_llm::LanguageModel`]; SMMF is
//!   backend-agnostic, exactly like the paper's support for multiple
//!   inference frameworks.
//! - **Model worker** ([`worker`]) — wraps one model replica with
//!   capacity limits, load/latency accounting, health state, and seeded
//!   failure injection for resilience experiments.
//! - **Model controller** ([`controller`]) — the metadata registry: which
//!   models exist, which workers serve each, worker lifecycle
//!   (register / drain / deregister).
//! - **API server + model handler** ([`server`]) — the deployment layer's
//!   entry point: routes a request to a worker under a
//!   [`router::RoutingPolicy`], retries on worker failure, and enforces the
//!   [`privacy`] mode (local-only serving, the paper's data-privacy
//!   guarantee).
//! - **Batched dispatch** ([`server::ApiServer::chat_many`]) — an optional
//!   continuous-batching mode: jobs routed to the same worker share decode
//!   steps in a per-worker [`dbgpt_llm::engine::BatchEngine`] with a radix
//!   prefix cache, compressing simulated serving time while keeping every
//!   completion byte-identical to the sequential path. Off by default
//!   ([`dbgpt_llm::engine::EngineConfig::disabled`]).
//! - **Resilience layer** ([`resilience`]) — per-worker circuit breakers,
//!   exponential backoff with seeded jitter, per-request deadline budgets
//!   in simulated µs, request hedging, load shedding, and a fallback model
//!   tier. Fully deterministic: same seed, same decisions.
//! - **Chaos harness** ([`chaos`]) — scripted fault schedules (crashes,
//!   flaky replicas, latency spikes, mass outages) driven against a live
//!   [`ApiServer`], reporting availability and goodput per scenario.
//! - **Observability** ([`server::ApiServer::with_observability`]) — the
//!   paper's "unified management perspective … monitoring": deterministic
//!   request traces (chat → attempt → hedge → engine drain) and serving
//!   metrics via [`dbgpt_obs`], timestamped on the simulated clock. Off
//!   (and free) by default; byte-identical hot path when disabled.
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt_smmf::{ApiServer, DeploymentMode};
//! use dbgpt_llm::GenerationParams;
//!
//! let mut server = ApiServer::new(DeploymentMode::Local);
//! server.deploy_builtin("sim-qwen", 2).unwrap();  // two replicas
//! let out = server.chat("sim-qwen", "hello data", &GenerationParams::default()).unwrap();
//! assert!(!out.text.is_empty());
//! ```

pub mod chaos;
pub mod controller;
pub mod error;
pub mod privacy;
pub mod resilience;
pub mod rng;
pub mod router;
pub mod server;
pub mod worker;

pub use chaos::{Fault, NodeFault, NodeFaultEvent, NodeSchedule, Scenario, ScenarioReport};
pub use controller::ModelController;
pub use dbgpt_llm::engine::EngineConfig;
pub use error::SmmfError;
pub use privacy::{DeploymentMode, Locality};
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, HedgeConfig, ResilienceConfig, ResilienceMetrics,
    RetryConfig, ShedConfig,
};
pub use rng::SplitMix64;
pub use router::RoutingPolicy;
pub use server::ApiServer;
pub use worker::{ModelWorker, WorkerHealth, WorkerId, WorkerStats};
