//! In-crate deterministic PRNG for everything random in SMMF.
//!
//! The resilience layer's whole value proposition is that scenario
//! outcomes are exactly reproducible: same seed, same fault sequence, same
//! breaker transitions, byte-identical chaos reports. Owning the generator
//! (SplitMix64, the seeding generator from the xoshiro family — a 64-bit
//! state, three xor-shift-multiply steps) makes that guarantee independent
//! of any external RNG crate's version or platform behaviour, and keeps
//! the crate free of non-std dependencies so the serving simulation can be
//! compiled and replayed anywhere the toolchain exists.
//!
//! The generator is *not* cryptographic and is not meant to be: it feeds
//! fault injection, routing choices, and jitter, where the requirements
//! are determinism, decent equidistribution, and cheap independent streams
//! (derived by salting the seed — see [`SplitMix64::stream`]).

/// Deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`. Identical seeds yield identical
    /// sequences on every platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// An independent stream derived from `seed` and a `salt` that names
    /// the stream (e.g. one stream for request faults, another for health
    /// probes). Streams with different salts are uncorrelated even for the
    /// same seed, which is what lets probing leave the request-level fault
    /// sequence untouched.
    pub fn stream(seed: u64, salt: u64) -> Self {
        // Mix the salt through one SplitMix64 step so that nearby salts
        // produce distant states.
        let mut s = SplitMix64::new(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SplitMix64::new(seed ^ s.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    /// `p >= 1` is always `true`, `p <= 0` is always `false`; both still
    /// consume one draw so interleaving rates never shifts the stream.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let u = self.next_f64();
        u < p
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero. Uses the modulo
    /// reduction: the bias is < 2⁻⁵³ for every `n` this crate uses
    /// (worker counts, probe budgets) and the method is trivially
    /// reproducible.
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "gen_index(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw in `[0, hi)` (`hi > 0`).
    pub fn gen_f64(&mut self, hi: f64) -> f64 {
        self.next_f64() * hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_edges_and_rates() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(r.gen_bool(1.0));
            assert!(!r.gen_bool(0.0));
        }
        let mut r = SplitMix64::new(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        // 0.3 ± a generous tolerance.
        assert!((2_600..3_400).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn index_in_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let i = r.gen_index(5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn streams_are_independent() {
        let mut base = SplitMix64::stream(42, 0);
        let mut probe = SplitMix64::stream(42, 1);
        let collisions = (0..32)
            .filter(|_| base.next_u64() == probe.next_u64())
            .count();
        assert_eq!(collisions, 0, "salted streams must not track each other");
    }

    #[test]
    fn gen_f64_scales() {
        let mut r = SplitMix64::new(13);
        for _ in 0..100 {
            let x = r.gen_f64(2.5);
            assert!((0.0..2.5).contains(&x));
        }
    }
}
