//! Error type for SMMF.

use std::fmt;

use dbgpt_llm::LlmError;

/// Errors from model management and serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmmfError {
    /// No model with this name is deployed.
    UnknownModel(String),
    /// The model exists but every worker is unhealthy/draining.
    NoHealthyWorker(String),
    /// A worker failed while serving (simulated infrastructure fault).
    WorkerFailure {
        /// Worker that failed.
        worker: String,
        /// Cause description.
        cause: String,
    },
    /// All retry attempts were exhausted.
    RetriesExhausted {
        /// Model requested.
        model: String,
        /// Attempts made.
        attempts: usize,
        /// Last error seen.
        last: String,
    },
    /// A non-local worker was registered while privacy mode is Local.
    PrivacyViolation {
        /// Offending worker.
        worker: String,
    },
    /// The underlying model rejected the request (bad params, overflow…).
    Model(LlmError),
    /// A worker id collision.
    DuplicateWorker(String),
}

impl fmt::Display for SmmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmmfError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            SmmfError::NoHealthyWorker(m) => write!(f, "no healthy worker for model `{m}`"),
            SmmfError::WorkerFailure { worker, cause } => {
                write!(f, "worker `{worker}` failed: {cause}")
            }
            SmmfError::RetriesExhausted {
                model,
                attempts,
                last,
            } => write!(
                f,
                "request to `{model}` failed after {attempts} attempt(s): {last}"
            ),
            SmmfError::PrivacyViolation { worker } => write!(
                f,
                "privacy violation: worker `{worker}` is not local but deployment mode is Local"
            ),
            SmmfError::Model(e) => write!(f, "model error: {e}"),
            SmmfError::DuplicateWorker(w) => write!(f, "duplicate worker id `{w}`"),
        }
    }
}

impl std::error::Error for SmmfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmmfError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LlmError> for SmmfError {
    fn from(e: LlmError) -> Self {
        SmmfError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_subjects() {
        assert!(SmmfError::UnknownModel("m".into()).to_string().contains('m'));
        assert!(SmmfError::NoHealthyWorker("q".into()).to_string().contains('q'));
        assert!(SmmfError::PrivacyViolation { worker: "w1".into() }
            .to_string()
            .contains("w1"));
    }

    #[test]
    fn llm_error_converts_and_sources() {
        let e: SmmfError = LlmError::EmptyPrompt.into();
        assert!(matches!(e, SmmfError::Model(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
