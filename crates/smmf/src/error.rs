//! Error type for SMMF.

use std::fmt;

use dbgpt_llm::LlmError;

/// Errors from model management and serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmmfError {
    /// No model with this name is deployed.
    UnknownModel(String),
    /// The model exists but every worker is unhealthy/draining.
    NoHealthyWorker(String),
    /// The model exists but no worker with this id serves it.
    UnknownWorker {
        /// Model looked up.
        model: String,
        /// Worker id that was not found.
        worker: String,
    },
    /// A worker failed while serving (simulated infrastructure fault).
    WorkerFailure {
        /// Worker that failed.
        worker: String,
        /// Cause description.
        cause: String,
    },
    /// All retry attempts were exhausted.
    RetriesExhausted {
        /// Model requested.
        model: String,
        /// Attempts made.
        attempts: usize,
        /// Last error seen.
        last: String,
    },
    /// The request's simulated deadline budget ran out before (or while)
    /// an attempt could complete.
    DeadlineExceeded {
        /// Model requested.
        model: String,
        /// The configured budget, simulated µs.
        budget_us: u64,
        /// Simulated µs already charged when the budget check failed.
        spent_us: u64,
    },
    /// Admission control rejected the request: the model already has the
    /// maximum number of requests in flight.
    Overloaded {
        /// Model requested.
        model: String,
        /// The configured in-flight limit.
        limit: u64,
    },
    /// A non-local worker was registered while privacy mode is Local.
    PrivacyViolation {
        /// Offending worker.
        worker: String,
    },
    /// The underlying model rejected the request (bad params, overflow…).
    Model(LlmError),
    /// A worker id collision.
    DuplicateWorker(String),
}

impl SmmfError {
    /// Stable short name of the variant, used to aggregate error counts in
    /// chaos-scenario reports.
    pub fn kind(&self) -> &'static str {
        match self {
            SmmfError::UnknownModel(_) => "unknown_model",
            SmmfError::NoHealthyWorker(_) => "no_healthy_worker",
            SmmfError::UnknownWorker { .. } => "unknown_worker",
            SmmfError::WorkerFailure { .. } => "worker_failure",
            SmmfError::RetriesExhausted { .. } => "retries_exhausted",
            SmmfError::DeadlineExceeded { .. } => "deadline_exceeded",
            SmmfError::Overloaded { .. } => "overloaded",
            SmmfError::PrivacyViolation { .. } => "privacy_violation",
            SmmfError::Model(_) => "model",
            SmmfError::DuplicateWorker(_) => "duplicate_worker",
        }
    }
}

impl fmt::Display for SmmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmmfError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            SmmfError::NoHealthyWorker(m) => write!(f, "no healthy worker for model `{m}`"),
            SmmfError::UnknownWorker { model, worker } => {
                write!(f, "model `{model}` has no worker `{worker}`")
            }
            SmmfError::WorkerFailure { worker, cause } => {
                write!(f, "worker `{worker}` failed: {cause}")
            }
            SmmfError::RetriesExhausted {
                model,
                attempts,
                last,
            } => write!(
                f,
                "request to `{model}` failed after {attempts} attempt(s): {last}"
            ),
            SmmfError::DeadlineExceeded {
                model,
                budget_us,
                spent_us,
            } => write!(
                f,
                "deadline exceeded for `{model}`: spent {spent_us}µs of a {budget_us}µs budget"
            ),
            SmmfError::Overloaded { model, limit } => write!(
                f,
                "model `{model}` is overloaded: {limit} request(s) already in flight"
            ),
            SmmfError::PrivacyViolation { worker } => write!(
                f,
                "privacy violation: worker `{worker}` is not local but deployment mode is Local"
            ),
            SmmfError::Model(e) => write!(f, "model error: {e}"),
            SmmfError::DuplicateWorker(w) => write!(f, "duplicate worker id `{w}`"),
        }
    }
}

impl std::error::Error for SmmfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmmfError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LlmError> for SmmfError {
    fn from(e: LlmError) -> Self {
        SmmfError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_subjects() {
        assert!(SmmfError::UnknownModel("m".into()).to_string().contains('m'));
        assert!(SmmfError::NoHealthyWorker("q".into()).to_string().contains('q'));
        assert!(SmmfError::PrivacyViolation { worker: "w1".into() }
            .to_string()
            .contains("w1"));
        assert!(SmmfError::UnknownWorker {
            model: "m".into(),
            worker: "w9".into()
        }
        .to_string()
        .contains("w9"));
        let d = SmmfError::DeadlineExceeded {
            model: "m".into(),
            budget_us: 100,
            spent_us: 120,
        }
        .to_string();
        assert!(d.contains("100") && d.contains("120"));
        assert!(SmmfError::Overloaded {
            model: "m".into(),
            limit: 8
        }
        .to_string()
        .contains('8'));
    }

    #[test]
    fn llm_error_converts_and_sources() {
        let e: SmmfError = LlmError::EmptyPrompt.into();
        assert!(matches!(e, SmmfError::Model(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn kinds_are_stable_and_distinct() {
        let kinds = [
            SmmfError::UnknownModel("m".into()).kind(),
            SmmfError::NoHealthyWorker("m".into()).kind(),
            SmmfError::UnknownWorker {
                model: "m".into(),
                worker: "w".into(),
            }
            .kind(),
            SmmfError::WorkerFailure {
                worker: "w".into(),
                cause: "c".into(),
            }
            .kind(),
            SmmfError::RetriesExhausted {
                model: "m".into(),
                attempts: 1,
                last: "l".into(),
            }
            .kind(),
            SmmfError::DeadlineExceeded {
                model: "m".into(),
                budget_us: 1,
                spent_us: 2,
            }
            .kind(),
            SmmfError::Overloaded {
                model: "m".into(),
                limit: 1,
            }
            .kind(),
            SmmfError::PrivacyViolation { worker: "w".into() }.kind(),
            SmmfError::Model(LlmError::EmptyPrompt).kind(),
            SmmfError::DuplicateWorker("w".into()).kind(),
        ];
        let mut sorted = kinds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kinds.len(), "kinds must be distinct");
    }
}
