//! The paper's demonstration scenario (Fig. 3): generative data analysis
//! over a sales database, driven by the multi-agent framework — plan,
//! three chart agents, aggregation, chart-type switching, and the durable
//! communication archive.
//!
//! ```text
//! cargo run -p dbgpt --example sales_report_analysis
//! ```

use dbgpt::vis::chart::ChartType;
use dbgpt::vis::{ascii, svg};
use dbgpt::DbGpt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let archive_path = std::env::temp_dir().join("dbgpt-example-archive.jsonl");
    let _ = std::fs::remove_file(&archive_path);

    let mut db = DbGpt::builder()
        .with_sales_demo()
        .archive_path(&archive_path)
        .build()?;

    // Area ② of the demo: the exact command from the paper.
    let goal = "Build sales reports and analyze user orders from at least three distinct dimensions";
    println!("user command: {goal}\n");

    let out = db.chat(goal)?;
    let report: dbgpt::apps::AnalysisReport = serde_json::from_value(out.payload)?;

    // Area ③: the planner's strategy.
    println!("the planner devised a {}-step strategy:", report.plan.len());
    for s in &report.plan {
        println!("  {}. {} (agent: {})", s.id, s.description, s.agent);
    }

    // Area ④: the three charts, as the terminal front-end renders them.
    println!();
    for (spec, sql) in report.charts.iter().zip(&report.chart_sql) {
        println!("SQL: {sql}");
        println!("{}", ascii::render(spec));
    }

    // Area ⑤: the aggregated narrative.
    println!("narrative: {}\n", report.narrative);

    // Area ⑥: the user flips the donut into a bar chart — same data.
    let donut = report
        .charts
        .iter()
        .find(|c| c.chart_type == ChartType::Donut)
        .expect("the demo plan includes a donut chart");
    println!("-- switching the category donut to a bar chart --");
    println!("{}", ascii::render(&donut.switch_type(ChartType::Bar)));

    // The web front-end would receive SVG for the same specs.
    let svg_doc = svg::render(donut);
    println!("(SVG rendering is {} bytes; starts with {:?})\n", svg_doc.len(), &svg_doc[..30]);

    // Area ⑦ + the reliability story: every agent message was archived.
    let archive = db.analyzer().orchestrator().archive();
    println!(
        "communication archive: {} message(s) persisted at {}",
        archive.len(),
        archive_path.display()
    );
    for msg in archive.conversation(&report.conversation).iter().take(4) {
        println!("  [{}] {} -> {} ({:?})", msg.seq, msg.from, msg.to, msg.kind);
    }
    println!("  …");

    let _ = std::fs::remove_file(&archive_path);
    Ok(())
}
