//! The paper's §4 future-work directions, implemented: time-series
//! forecasting agents and automatic data preparation — plus the SQL
//! engine's secondary indexes and UNION queries that power them.
//!
//! ```text
//! cargo run -p dbgpt --example future_work_agents
//! ```

use dbgpt::apps::clean::{CleanOptions, DataCleaner};
use dbgpt::apps::{AppContext, Forecaster};
use dbgpt::DbGpt;

const DIRTY_SHEET: &str = "\
month,revenue,region
jan,\"$1,200\", north
feb,$1450,North
mar,\"$1,690\",NORTH
apr,$1960,north
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = DbGpt::builder().build()?;

    // ---- 1. A dirty spreadsheet arrives ----
    db.load_sheet("revenue", DIRTY_SHEET)?;
    println!("-- as loaded (currency strings, inconsistent casing) --");
    println!("{}", db.execute_sql("SELECT * FROM revenue")?);

    // ---- 2. Automatic data preparation (future work: CleanAgent) ----
    let ctx: &AppContext = db.context();
    let report = DataCleaner::new(ctx.clone())
        .with_options(CleanOptions::aggressive())
        .clean_table("revenue")?;
    println!("-- data preparation report --");
    println!("{}\n", report.narrative());
    println!("{}", db.execute_sql("SELECT * FROM revenue")?);

    // The recovered numeric column is now aggregable…
    println!("{}", db.execute_sql("SELECT SUM(revenue) AS total FROM revenue")?);

    // …and indexable.
    db.execute_sql("CREATE INDEX idx_region ON revenue (region)")?;
    println!("-- indexed point lookup --");
    println!(
        "{}",
        db.execute_sql("SELECT month, revenue FROM revenue WHERE region = 'north'")?
    );

    // ---- 3. Time-series forecasting (future work: predictive agents) ----
    let forecaster = Forecaster::new(ctx.clone());
    let f = forecaster.ask("forecast revenue for the next 3 months")?;
    println!("-- forecast ({}) --", f.method);
    println!("{}", f.narrative);
    println!("{}", dbgpt::vis::ascii::render(&f.chart));

    // The same capability through the chat front door, in one line:
    let out = db.chat("predict revenue for the next 2 months")?;
    println!("-- via chat routing ({:?}) --", out.intent);
    println!("{}", out.text.lines().next().unwrap_or(""));

    // ---- 4. UNION across tables (engine extension) ----
    db.execute_sql("CREATE TABLE archive_revenue (month TEXT, revenue INT, region TEXT)")?;
    db.execute_sql("INSERT INTO archive_revenue VALUES ('nov', 900, 'north'), ('dec', 1100, 'north')")?;
    println!("-- UNION of live + archived revenue --");
    println!(
        "{}",
        db.execute_sql(
            "SELECT month, revenue FROM archive_revenue \
             UNION ALL SELECT month, revenue FROM revenue ORDER BY revenue"
        )?
    );
    Ok(())
}
