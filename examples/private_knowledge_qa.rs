//! Private knowledge-base QA: the SMMF privacy guarantee + the RAG stack
//! with PII redaction — "All the interactions among users, LLMs and data
//! are performed locally" (paper §1).
//!
//! ```text
//! cargo run -p dbgpt --example private_knowledge_qa
//! ```

use dbgpt::rag::{IclBuilder, PrivacyPolicy, RetrievalStrategy};
use dbgpt::smmf::{DeploymentMode, Locality, ModelWorker};
use dbgpt::DbGpt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Local deployment mode: the privacy posture is an enforced invariant.
    let mut db = DbGpt::builder()
        .deployment_mode(DeploymentMode::Local)
        .build()?;
    println!("deployment mode is private: {}", db.config().deployment_mode.is_private());

    // Proof: a remote worker cannot enter the serving pool at all.
    let remote = ModelWorker::with_faults(
        "remote-gpt",
        dbgpt::llm::builtin_model("sim-qwen").unwrap(),
        Locality::Remote,
        0.0,
        0,
    );
    // (we need a scratch server since DbGpt's is already running)
    let mut scratch = dbgpt::smmf::ApiServer::new(DeploymentMode::Local);
    match scratch.register_worker(remote) {
        Err(e) => println!("remote worker rejected: {e}\n"),
        Ok(_) => unreachable!("Local mode admits no remote workers"),
    }

    // Ingest internal documents — including ones with PII.
    db.ingest_document(
        "oncall",
        "Escalations go to dana@corp.example or +1 (555) 010-7788. \
         The standby cluster handles failover automatically.",
    );
    db.ingest_document(
        "architecture",
        "The ingest service writes to the write-ahead log before the index. \
         Compaction runs nightly.",
    );

    // Ask through the full stack.
    for q in [
        "what handles failover?",
        "when does compaction run?",
        "who do escalations go to?",
    ] {
        let out = db.chat(q)?;
        println!("Q: {q}\nA: {}\n", out.text);
    }

    // The ICL layer redacts PII before any prompt reaches a model.
    let kb = db.context().kb.read();
    let hits = kb.retrieve("escalation contact", 2, RetrievalStrategy::Hybrid);
    let (prompt, _) = IclBuilder::new(256)
        .with_policy(PrivacyPolicy::strict())
        .build("who do escalations go to?", &hits)?;
    println!("-- the prompt the model actually sees (note the redactions) --");
    println!("{prompt}");
    assert!(!prompt.contains("dana@corp.example"));
    assert!(!prompt.contains("7788"));
    Ok(())
}
