//! AWEL in all three styles: the fluent builder, the declarative DSL, and
//! the three execution modes (batch / stream / async) — paper §2.4.
//!
//! ```text
//! cargo run -p dbgpt --example awel_workflow
//! ```

use dbgpt::awel::{ops, parse_dsl, DagBuilder, ExecutionMode, OperatorRegistry, Scheduler};
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheduler = Scheduler::new();

    // ---- 1. Builder style: a branching ETL-ish workflow ----
    let dag = DagBuilder::new("etl")
        .node("parse", ops::map(|v| json!(v.as_str().unwrap_or("").len() as i64)))
        .node("classify", ops::branch(|v| v.as_i64().unwrap_or(0) > 10))
        .node("long_path", ops::map(|v| json!(format!("LONG:{v}"))))
        .node("short_path", ops::map(|v| json!(format!("short:{v}"))))
        .edge("parse", "classify")
        .edge_labeled("classify", "long_path", "true")
        .edge_labeled("classify", "short_path", "false")
        .build()?;
    println!("-- builder workflow ({} nodes) --", dag.node_count());
    for input in ["hi", "a considerably longer record"] {
        let run = scheduler.run_batch(&dag, json!(input))?;
        println!("  {input:?} → {:?} (skipped: {:?})", run.leaf_outputs(), run.skipped);
    }

    // ---- 2. DSL style: the Fig. 3 analysis topology in four lines ----
    let mut registry = OperatorRegistry::with_builtins();
    registry.register("plan", ops::identity());
    registry.register("chart", ops::map(|v| json!(format!("chart({v})"))));
    let dsl = "dag sales_report {\n\
        node c_category = chart;\n\
        node c_user = chart;\n\
        node c_month = chart;\n\
        plan >> [c_category, c_user, c_month] >> join;\n\
    }";
    let dag = parse_dsl(dsl, &registry)?;
    println!("\n-- DSL workflow --\n{}", dag.to_dot());
    let run = scheduler.run_batch(&dag, json!("sales-goal"))?;
    println!("  aggregate received: {}", run.outputs["join"]);

    // ---- 3. Stream + async modes ----
    let pipeline = DagBuilder::new("scores")
        .node("normalize", ops::map(|v| json!(v.as_f64().unwrap_or(0.0) / 100.0)))
        .node("grade", ops::map(|v| {
            let x = v.as_f64().unwrap_or(0.0);
            json!(if x > 0.9 { "A" } else if x > 0.7 { "B" } else { "C" })
        }))
        .edge("normalize", "grade")
        .build()?;
    println!("\n-- stream mode over 5 events --");
    let runs = scheduler.run_stream(&pipeline, [95, 72, 88, 55, 91].map(|s| json!(s)))?;
    let grades: Vec<String> = runs
        .iter()
        .map(|r| r.sole_output().unwrap().as_str().unwrap().to_string())
        .collect();
    println!("  grades: {grades:?}");

    let batch = scheduler.run(&pipeline, json!(84), ExecutionMode::Batch)?;
    let parallel = scheduler.run(&pipeline, json!(84), ExecutionMode::Async)?;
    println!("\n-- async mode agrees with batch: {} --", batch.outputs == parallel.outputs);
    Ok(())
}
