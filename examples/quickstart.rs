//! Quickstart: build a DB-GPT system and talk to your data.
//!
//! ```text
//! cargo run -p dbgpt --example quickstart
//! ```

use dbgpt::DbGpt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One builder call assembles all four layers: SMMF model serving
    // (private/local by default), the SQL engine, the RAG knowledge base,
    // the multi-agent framework and the server layer.
    let mut db = DbGpt::builder().with_sales_demo().build()?;

    println!("DB-GPT is up: {db:?}\n");

    // Natural-language questions route to the right app automatically.
    for input in [
        "how many orders are there?",
        "what is the total amount per category of orders?",
        "which product has the highest price?",
        "SELECT name, city FROM users ORDER BY name",
    ] {
        let out = db.chat(input)?;
        println!("you   > {input}");
        println!("dbgpt > [{:?}]\n{}\n", out.intent, out.text);
    }

    // Feed it your own data…
    db.execute_sql("CREATE TABLE tasks (id INT, title TEXT, done BOOL)")?;
    db.execute_sql("INSERT INTO tasks VALUES (1, 'write docs', false), (2, 'ship demo', true)")?;
    let out = db.chat("how many tasks are there?")?;
    println!("you   > how many tasks are there?");
    println!("dbgpt > {}\n", out.text);

    // …and your own knowledge.
    db.ingest_document(
        "runbook",
        "To restart the ingest pipeline, run the blue script on host seven.",
    );
    let out = db.chat("how do I restart the ingest pipeline?")?;
    println!("you   > how do I restart the ingest pipeline?");
    println!("dbgpt > {}", out.text);

    Ok(())
}
