//! Chat2Excel: load a spreadsheet (CSV) and interrogate it in natural
//! language, ending with a chart.
//!
//! ```text
//! cargo run -p dbgpt --example chat_to_excel
//! ```

use dbgpt::DbGpt;

const SHEET: &str = "\
region,quarter,sales,returns
north,q1,120,4
south,q1,95,2
east,q1,143,6
north,q2,150,3
south,q2,88,5
east,q2,170,2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = DbGpt::builder().build()?;

    // "Excel" ingestion: types are inferred per column.
    let rows = db.load_sheet("sales_sheet", SHEET)?;
    println!("loaded sales_sheet: {rows} rows");
    println!("{}", db.execute_sql("SELECT * FROM sales_sheet LIMIT 3")?);

    // Chat over the sheet.
    for q in [
        "how many sales_sheet are there?",
        "what is the total sales per region of sales_sheet?",
        "show the top 2 sales_sheet by sales",
        "what is the average returns of sales_sheet?",
    ] {
        let out = db.chat(q)?;
        println!("Q: {q}");
        println!("A: {}\n", out.text);
    }

    // Finish with a visualization of the same data.
    let out = db.chat("draw a bar chart of the total sales per region of sales_sheet")?;
    println!("{}", out.text);
    Ok(())
}
