//! Every checkable claim the paper makes, asserted against the system.
//!
//! Each test cites the paper location it validates.

use dbgpt::baselines::{all_frameworks, matrix, Capability};
use dbgpt::text2sql::{dataset, evaluate, FineTuner, Text2SqlModel};
use dbgpt::vis::chart::ChartType;
use dbgpt::DbGpt;

const DEMO_GOAL: &str =
    "Build sales reports and analyze user orders from at least three distinct dimensions";

/// §3 / Fig. 3 area ③: "invoking a planner to generate a four-step
/// strategy tailored to the task".
#[test]
fn planner_generates_a_four_step_strategy() {
    let mut db = DbGpt::builder().with_sales_demo().build().unwrap();
    let out = db.chat(DEMO_GOAL).unwrap();
    let report: dbgpt::apps::AnalysisReport = serde_json::from_value(out.payload).unwrap();
    assert_eq!(report.plan.len(), 4);
}

/// §2.3: "1) a donut chart for the analysis of total sales by product
/// category, 2) a bar chart for … user demographics, and 3) an area chart
/// for evaluating monthly sales trends".
#[test]
fn the_three_charts_match_the_paper() {
    let mut db = DbGpt::builder().with_sales_demo().build().unwrap();
    let out = db.chat(DEMO_GOAL).unwrap();
    let report: dbgpt::apps::AnalysisReport = serde_json::from_value(out.payload).unwrap();
    let mut pairs: Vec<(ChartType, &str)> = report
        .plan
        .iter()
        .filter_map(|s| {
            Some((
                ChartType::parse(s.chart.as_deref()?)?,
                s.dimension.as_deref()?,
            ))
        })
        .collect();
    pairs.sort_by_key(|(t, _)| t.name());
    assert!(pairs.contains(&(ChartType::Donut, "product category")));
    assert!(pairs.contains(&(ChartType::Bar, "user demographics")));
    assert!(pairs.contains(&(ChartType::Area, "monthly trend")));
    assert_eq!(report.charts.len(), 3);
}

/// §2.3: "archives the entire communication history among its agents
/// within a local storage system".
#[test]
fn entire_communication_history_is_archived() {
    let mut db = DbGpt::builder().with_sales_demo().build().unwrap();
    let out = db.chat(DEMO_GOAL).unwrap();
    let report: dbgpt::apps::AnalysisReport = serde_json::from_value(out.payload).unwrap();
    let msgs = db
        .analyzer()
        .orchestrator()
        .archive()
        .conversation(&report.conversation);
    // goal + plan + (task+result)×3 + final report.
    assert_eq!(msgs.len(), 9);
    use dbgpt::agents::MessageKind;
    assert_eq!(msgs.first().unwrap().kind, MessageKind::Goal);
    assert_eq!(msgs.last().unwrap().kind, MessageKind::Report);
}

/// §1 / §2.3: "All the interactions among users, LLMs and data are
/// performed locally, which definitely promises users' privacy."
#[test]
fn local_mode_enforces_privacy() {
    use dbgpt::smmf::{ApiServer, DeploymentMode, Locality, ModelWorker};
    let mut server = ApiServer::new(DeploymentMode::Local);
    let remote = ModelWorker::with_faults(
        "r0",
        dbgpt::llm::builtin_model("sim-qwen").unwrap(),
        Locality::Remote,
        0.0,
        0,
    );
    assert!(server.register_worker(remote).is_err());
    // And the default build is private.
    let db = DbGpt::builder().build().unwrap();
    assert!(db.config().deployment_mode.is_private());
}

/// Table 1: the full capability matrix, probed (summarised here; the
/// cell-exact check lives in `dbgpt-baselines`).
#[test]
fn dbgpt_dominates_the_capability_matrix() {
    let mut frameworks = all_frameworks();
    let m = matrix(&mut frameworks);
    for cap in Capability::ALL {
        assert_eq!(m.get(*cap, "DB-GPT"), Some(true), "{cap:?}");
    }
    // No baseline matches DB-GPT's row.
    for f in ["LangChain", "LlamaIndex", "PrivateGPT", "ChatDB"] {
        let all_true = Capability::ALL.iter().all(|c| m.get(*c, f) == Some(true));
        assert!(!all_true, "{f} should not match DB-GPT");
    }
}

/// §2.5: fine-tuning Text-to-SQL models yields "superior outcomes" on
/// domain data.
#[test]
fn fine_tuning_improves_text2sql_materially() {
    let bench = dataset::spider_like(7);
    let base = evaluate(&Text2SqlModel::base(), &bench);
    let tuned = evaluate(
        &Text2SqlModel::fine_tuned("t", FineTuner::new().fit(&bench.databases, &bench.train)),
        &bench,
    );
    assert!(
        tuned.em_accuracy() >= base.em_accuracy() + 0.25,
        "tuned {:.2} vs base {:.2}",
        tuned.em_accuracy(),
        base.em_accuracy()
    );
    assert!(tuned.exec_accuracy() >= tuned.em_accuracy());
}

/// §1: "users can implement their execution plan for multi-agents with
/// simple expression (i.e. few lines of code)".
#[test]
fn awel_expresses_the_demo_workflow_in_few_lines() {
    use dbgpt::awel::{ops, parse_dsl, OperatorRegistry, Scheduler};
    let mut registry = OperatorRegistry::with_builtins();
    registry.register("plan", ops::identity());
    registry.register("chart", ops::identity());
    // Four lines of expression.
    let dsl = "dag demo {\n\
        node c1 = chart; node c2 = chart; node c3 = chart;\n\
        plan >> [c1, c2, c3] >> join;\n\
    }";
    let dag = parse_dsl(dsl, &registry).unwrap();
    assert_eq!(dag.node_count(), 5);
    let run = Scheduler::new().run_batch(&dag, serde_json::json!("g")).unwrap();
    assert_eq!(run.outputs["join"].as_array().unwrap().len(), 3);
}

/// §1 / Table 1: multilingual interactions (English and Chinese).
#[test]
fn chinese_demo_command_is_equivalent_to_english() {
    let mut db = DbGpt::builder().with_sales_demo().build().unwrap();
    let en = db.chat(DEMO_GOAL).unwrap();
    let zh = db.chat("构建销售报表，从三个维度分析用户订单").unwrap();
    let en_report: dbgpt::apps::AnalysisReport = serde_json::from_value(en.payload).unwrap();
    let zh_report: dbgpt::apps::AnalysisReport = serde_json::from_value(zh.payload).unwrap();
    let types = |r: &dbgpt::apps::AnalysisReport| {
        let mut t: Vec<&str> = r.charts.iter().map(|c| c.chart_type.name()).collect();
        t.sort();
        t
    };
    assert_eq!(types(&en_report), types(&zh_report));
}

/// §2.1: the application layer covers all listed functionalities.
#[test]
fn application_layer_is_complete() {
    let layers = dbgpt::architecture();
    let app = &layers[0];
    for functionality in [
        "Text-to-SQL",
        "Chat2DB",
        "Chat2Data",
        "Chat2Excel",
        "Chat2Visualization",
        "Generative Data Analysis",
        "Knowledge-Base QA",
    ] {
        assert!(
            app.components.iter().any(|c| c.contains(functionality)),
            "missing {functionality}"
        );
    }
}
