//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;

use dbgpt::llm::Tokenizer;
use dbgpt::rag::{cosine_similarity, Embedder, HashEmbedder, PrivacyPolicy};
use dbgpt::server::{decode_frame, encode_frame, Request};
use dbgpt::sqlengine::{Engine, Value};

proptest! {
    /// The tokenizer's stream chunks always reassemble the input exactly.
    #[test]
    fn tokenizer_stream_roundtrip(text in ".{0,200}") {
        let tk = Tokenizer::new();
        let rebuilt: String = tk.stream_chunks(&text).concat();
        prop_assert_eq!(rebuilt, text);
    }

    /// Truncation never exceeds the budget and is a prefix of the input.
    #[test]
    fn tokenizer_truncate_budget(text in "[ -~]{0,200}", budget in 0usize..50) {
        let tk = Tokenizer::new();
        let (prefix, kept) = tk.truncate(&text, budget);
        prop_assert!(kept <= budget);
        prop_assert!(text.starts_with(&prefix));
        prop_assert_eq!(tk.count(&prefix), kept);
    }

    /// The SQL lexer never panics and either lexes or errors.
    #[test]
    fn lexer_total(text in ".{0,100}") {
        let _ = dbgpt::sqlengine::lexer::lex(&text);
    }

    /// The SQL parser never panics on arbitrary input.
    #[test]
    fn parser_total(text in ".{0,100}") {
        let _ = dbgpt::sqlengine::parser::parse(&text);
    }

    /// Inserted integers come back exactly through a filtered select.
    #[test]
    fn sql_insert_select_roundtrip(values in proptest::collection::vec(-1000i64..1000, 1..20)) {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (i INT, v INT)").unwrap();
        for (i, v) in values.iter().enumerate() {
            e.execute(&format!("INSERT INTO t VALUES ({i}, {v})")).unwrap();
        }
        let r = e.execute("SELECT v FROM t ORDER BY i").unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got, values);
    }

    /// SUM over the engine equals summation in Rust.
    #[test]
    fn sql_sum_agrees_with_rust(values in proptest::collection::vec(-100i64..100, 0..30)) {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (v INT)").unwrap();
        for v in &values {
            e.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let r = e.execute("SELECT SUM(v), COUNT(*) FROM t").unwrap();
        let expected: i64 = values.iter().sum();
        if values.is_empty() {
            prop_assert!(r.rows[0][0].is_null());
        } else {
            prop_assert_eq!(r.rows[0][0].as_i64(), Some(expected));
        }
        prop_assert_eq!(r.rows[0][1].as_i64(), Some(values.len() as i64));
    }

    /// total_cmp is a total order (antisymmetric + transitive on triples).
    #[test]
    fn value_total_order(a in any::<i64>(), b in any::<i64>(), c in any::<f64>()) {
        let va = Value::Int(a);
        let vb = Value::Int(b);
        let vc = if c.is_nan() { Value::Null } else { Value::Float(c) };
        let vals = [&va, &vb, &vc];
        for x in vals {
            prop_assert_eq!(x.total_cmp(x), std::cmp::Ordering::Equal);
            for y in vals {
                prop_assert_eq!(x.total_cmp(y), y.total_cmp(x).reverse());
            }
        }
    }

    /// Embeddings are always unit-norm (or zero) and self-similarity is 1.
    #[test]
    fn embedding_norm_invariant(text in "[a-z ]{1,80}") {
        let e = HashEmbedder::new();
        let v = e.embed(&text);
        let n = v.norm();
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4);
        if n > 0.0 {
            prop_assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-4);
        }
    }

    /// Privacy redaction is idempotent.
    #[test]
    fn redaction_idempotent(text in ".{0,120}") {
        let p = PrivacyPolicy::strict();
        let once = p.redact(&text);
        let twice = p.redact(&once);
        prop_assert_eq!(once, twice);
    }

    /// Server frames roundtrip for arbitrary request content.
    #[test]
    fn frame_roundtrip(id in any::<u64>(), app in "[a-z]{1,12}", input in ".{0,100}") {
        let req = Request::new(id, app, input);
        let frame = encode_frame(&req);
        let (back, used): (Request, usize) = decode_frame(&frame).unwrap();
        prop_assert_eq!(back, req);
        prop_assert_eq!(used, frame.len());
    }

    /// LIKE matching agrees with a simple reference implementation for
    /// patterns without wildcards (equality) and pure-% patterns.
    #[test]
    fn like_degenerate_cases(s in "[a-z]{0,10}") {
        use dbgpt::sqlengine::expr::like_match;
        prop_assert!(like_match(&s, &s));
        prop_assert!(like_match(&s, "%"));
        let with_suffix = format!("{s}x");
        prop_assert!(!like_match(&with_suffix, &s));
    }

    /// CSV export/import is lossless for integer tables.
    #[test]
    fn csv_roundtrip(values in proptest::collection::vec(0i64..1000, 1..15)) {
        use dbgpt::sqlengine::csv::{export_csv, load_csv};
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (v INT)").unwrap();
        for v in &values {
            e.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let text = export_csv(e.database(), "t").unwrap();
        let mut e2 = Engine::new();
        load_csv(e2.database_mut(), "t2", &text).unwrap();
        let a = e.execute("SELECT v FROM t").unwrap();
        let b = e2.execute("SELECT v FROM t2").unwrap();
        prop_assert_eq!(a.rows, b.rows);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any non-empty prompt gets a completion from every builtin model.
    #[test]
    fn models_are_total_on_reasonable_prompts(words in proptest::collection::vec("[a-z]{1,8}", 1..12)) {
        use dbgpt::llm::{catalog, GenerationParams};
        let prompt = words.join(" ");
        for name in catalog::BUILTIN_MODELS {
            let m = catalog::builtin_model(name).unwrap();
            let out = m.generate(&prompt, &GenerationParams::default()).unwrap();
            prop_assert!(!out.text.is_empty(), "{name} returned empty");
            prop_assert!(out.usage.prompt_tokens > 0);
        }
    }

    /// AWEL: random fan-out widths execute identically in batch and async.
    #[test]
    fn awel_modes_agree(width in 1usize..12, trigger in -100i64..100) {
        use dbgpt::awel::{ops, DagBuilder, ExecutionMode, Scheduler};
        use serde_json::json;
        let mut b = DagBuilder::new("p")
            .node("src", ops::identity())
            .node("sink", ops::map_all(|vs| json!(vs.iter().map(|v| v.as_i64().unwrap()).sum::<i64>())));
        for i in 0..width {
            let n = format!("n{i}");
            b = b
                .node(n.clone(), ops::map(move |v| json!(v.as_i64().unwrap() + i as i64)))
                .edge("src", n.clone())
                .edge(n, "sink");
        }
        let dag = b.build().unwrap();
        let s = Scheduler::new();
        let batch = s.run(&dag, json!(trigger), ExecutionMode::Batch).unwrap();
        let parallel = s.run(&dag, json!(trigger), ExecutionMode::Async).unwrap();
        prop_assert_eq!(&batch.outputs, &parallel.outputs);
        let expected: i64 = (0..width as i64).map(|i| trigger + i).sum();
        prop_assert_eq!(&batch.outputs["sink"], &json!(expected));
    }
}
