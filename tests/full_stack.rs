//! Cross-crate integration: requests travelling the full four-layer stack —
//! binary frames through the server layer, sessions, SMMF-backed agents,
//! and every application.

use dbgpt::apps::{handlers::build_server, AppContext};
use dbgpt::server::{decode_frame, encode_frame, Request, Response, Status};
use dbgpt::smmf::{DeploymentMode, RoutingPolicy};
use dbgpt::DbGpt;

fn system() -> DbGpt {
    DbGpt::builder().with_sales_demo().build().expect("system builds")
}

#[test]
fn frame_in_frame_out_through_every_app() {
    let ctx = AppContext::local_default().with_sales_demo_data();
    let server = build_server(&ctx);
    let turns = [
        ("chat2db", "SELECT COUNT(*) FROM orders"),
        ("chat2data", "how many users are there?"),
        ("chat2viz", "bar chart of the total amount per month of orders"),
        ("kbqa", "anything indexed?"),
        (
            "analysis",
            "Build sales reports and analyze user orders from at least three distinct dimensions",
        ),
    ];
    for (i, (app, input)) in turns.iter().enumerate() {
        let frame = encode_frame(&Request::new(i as u64, *app, *input));
        let out = server.handle_frame(&frame);
        let (resp, consumed): (Response, usize) = decode_frame(&out).expect("response frame");
        assert_eq!(consumed, out.len());
        assert_eq!(resp.id, i as u64, "{app}");
        assert_eq!(resp.status, Status::Ok, "{app}: {:?}", resp.content);
    }
}

#[test]
fn multi_turn_session_keeps_history() {
    let ctx = AppContext::local_default().with_sales_demo_data();
    let server = build_server(&ctx);
    let sid = server.open_session("chat2data");
    for (i, q) in ["how many orders are there?", "how many users are there?"]
        .iter()
        .enumerate()
    {
        let mut req = Request::new(i as u64, "chat2data", *q);
        req.session = sid.clone();
        let resp = server.handle(&req);
        assert_eq!(resp.status, Status::Ok);
    }
    let session = server.sessions().get(&sid).unwrap();
    assert_eq!(session.history.len(), 4);
    assert_eq!(session.user_turns(), 2);
}

#[test]
fn smmf_replicas_back_the_agents() {
    // 4 replicas, least-latency routing; the demo goal must still work and
    // spread load across workers.
    let mut db = DbGpt::builder()
        .replicas(4)
        .routing(RoutingPolicy::LeastLatency)
        .with_sales_demo()
        .build()
        .unwrap();
    let out = db
        .chat("Build sales reports and analyze user orders from at least three distinct dimensions")
        .unwrap();
    assert_eq!(out.payload["charts"].as_array().unwrap().len(), 3);
    let snapshot = db.smmf().controller().snapshot();
    assert_eq!(snapshot.len(), 4);
    // The planner and aggregator call the model; chart agents are
    // SQL-only. So at least 2 requests hit the SMMF deployment.
    let served: u64 = snapshot.iter().map(|(_, _, _, served, _)| served).sum();
    assert!(served >= 2, "planner + aggregator calls expected, got {served}");
}

#[test]
fn cloud_mode_serves_the_proxy_model() {
    let mut db = DbGpt::builder()
        .chat_model("proxy-gpt")
        .deployment_mode(DeploymentMode::Cloud)
        .with_sales_demo()
        .build()
        .unwrap();
    let out = db.chat("how many orders are there?").unwrap();
    assert!(out.text.contains('8'));
}

#[test]
fn durable_archive_survives_rebuild() {
    let path = std::env::temp_dir().join(format!("dbgpt-it-archive-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut db = DbGpt::builder()
            .with_sales_demo()
            .archive_path(&path)
            .build()
            .unwrap();
        db.chat("Build sales reports and analyze user orders from at least three distinct dimensions")
            .unwrap();
    }
    // A new system over the same archive sees the previous conversation.
    let db = DbGpt::builder()
        .with_sales_demo()
        .archive_path(&path)
        .build()
        .unwrap();
    let archive = db.analyzer().orchestrator().archive();
    assert!(archive.len() >= 9, "archive reloaded {} messages", archive.len());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mixed_language_conversation() {
    let mut db = system();
    let en = db.chat("how many orders are there?").unwrap();
    assert!(en.text.contains("The answer is 8."));
    let zh = db.chat("构建销售报表，从三个维度分析用户订单").unwrap();
    assert_eq!(zh.payload["charts"].as_array().unwrap().len(), 3);
}

#[test]
fn sheet_then_chart_round_trip() {
    let mut db = system();
    db.load_sheet("metrics", "service,errors\napi,12\nweb,3\nworker,7\n")
        .unwrap();
    let out = db
        .chat("draw a pie chart of the total errors per service of metrics")
        .unwrap();
    let svg = out.payload["svg"].as_str().unwrap();
    assert_eq!(svg.matches("<path").count(), 3);
}

#[test]
fn errors_propagate_cleanly_across_layers() {
    let ctx = AppContext::local_default(); // empty database
    let server = build_server(&ctx);
    let resp = server.handle(&Request::new(1, "chat2data", "how many rows?"));
    assert_eq!(resp.status, Status::Error);
    let resp = server.handle(&Request::new(2, "nosuchapp", "x"));
    assert_eq!(resp.status, Status::BadRequest);
}

#[test]
fn full_system_over_a_real_tcp_socket() {
    use dbgpt::server::tcp::{send_request, TcpServer};
    use std::net::TcpStream;
    use std::sync::Arc;

    let ctx = AppContext::local_default().with_sales_demo_data();
    let server = Arc::new(build_server(&ctx));
    let tcp = TcpServer::bind("127.0.0.1:0", server).expect("binds");
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();

    let resp = send_request(
        &mut stream,
        &Request::new(1, "chat2data", "how many orders are there?"),
    )
    .unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.content["answer"], "The answer is 8.");

    // A heavier multi-agent request over the same connection.
    let resp = send_request(
        &mut stream,
        &Request::new(
            2,
            "analysis",
            "Build sales reports and analyze user orders from at least three distinct dimensions",
        ),
    )
    .unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.content["charts"].as_array().unwrap().len(), 3);
    tcp.shutdown();
}
