/root/repo/target/debug/deps/serde_json-46318eabebc8128c.d: .scratch/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-46318eabebc8128c.rlib: .scratch/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-46318eabebc8128c.rmeta: .scratch/stubs/serde_json/src/lib.rs

.scratch/stubs/serde_json/src/lib.rs:
