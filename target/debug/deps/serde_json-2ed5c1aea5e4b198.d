/root/repo/target/debug/deps/serde_json-2ed5c1aea5e4b198.d: .scratch/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-2ed5c1aea5e4b198.rmeta: .scratch/stubs/serde_json/src/lib.rs

.scratch/stubs/serde_json/src/lib.rs:
