/root/repo/target/debug/deps/proptest-13b835ce29982178.d: .scratch/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-13b835ce29982178.rmeta: .scratch/stubs/proptest/src/lib.rs

.scratch/stubs/proptest/src/lib.rs:
