/root/repo/target/debug/deps/columnar_props-f13b353152b333b8.d: crates/sqlengine/tests/columnar_props.rs

/root/repo/target/debug/deps/columnar_props-f13b353152b333b8: crates/sqlengine/tests/columnar_props.rs

crates/sqlengine/tests/columnar_props.rs:
