/root/repo/target/debug/deps/rand-d099c2f6df3139c7.d: .scratch/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d099c2f6df3139c7.rlib: .scratch/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d099c2f6df3139c7.rmeta: .scratch/stubs/rand/src/lib.rs

.scratch/stubs/rand/src/lib.rs:
