/root/repo/target/debug/deps/dbgpt_obs-0a2ee876a6e53f43.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libdbgpt_obs-0a2ee876a6e53f43.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profile.rs:
crates/obs/src/render.rs:
crates/obs/src/slo.rs:
crates/obs/src/trace.rs:
