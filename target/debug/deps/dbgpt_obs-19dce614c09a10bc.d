/root/repo/target/debug/deps/dbgpt_obs-19dce614c09a10bc.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdbgpt_obs-19dce614c09a10bc.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profile.rs:
crates/obs/src/render.rs:
crates/obs/src/slo.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
