/root/repo/target/debug/deps/rand-02d9b38d0badc1f4.d: .scratch/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-02d9b38d0badc1f4.rmeta: .scratch/stubs/rand/src/lib.rs

.scratch/stubs/rand/src/lib.rs:
