/root/repo/target/debug/deps/columnar_props-0ff6e69ad63e3baf.d: crates/sqlengine/tests/columnar_props.rs Cargo.toml

/root/repo/target/debug/deps/libcolumnar_props-0ff6e69ad63e3baf.rmeta: crates/sqlengine/tests/columnar_props.rs Cargo.toml

crates/sqlengine/tests/columnar_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
