/root/repo/target/debug/deps/serde_derive-c1b9b5c747e9fe7f.d: .scratch/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-c1b9b5c747e9fe7f.so: .scratch/stubs/serde_derive/src/lib.rs

.scratch/stubs/serde_derive/src/lib.rs:
