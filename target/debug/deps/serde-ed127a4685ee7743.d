/root/repo/target/debug/deps/serde-ed127a4685ee7743.d: .scratch/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ed127a4685ee7743.rmeta: .scratch/stubs/serde/src/lib.rs

.scratch/stubs/serde/src/lib.rs:
