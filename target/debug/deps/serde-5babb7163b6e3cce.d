/root/repo/target/debug/deps/serde-5babb7163b6e3cce.d: .scratch/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5babb7163b6e3cce.rlib: .scratch/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5babb7163b6e3cce.rmeta: .scratch/stubs/serde/src/lib.rs

.scratch/stubs/serde/src/lib.rs:
