/root/repo/target/debug/deps/dbgpt_sqlengine-a4c6c792f7e890bd.d: crates/sqlengine/src/lib.rs crates/sqlengine/src/catalog.rs crates/sqlengine/src/col.rs crates/sqlengine/src/csv.rs crates/sqlengine/src/engine.rs crates/sqlengine/src/error.rs crates/sqlengine/src/exec/mod.rs crates/sqlengine/src/exec/aggregate.rs crates/sqlengine/src/exec/executor.rs crates/sqlengine/src/exec/vectorized.rs crates/sqlengine/src/expr.rs crates/sqlengine/src/lexer.rs crates/sqlengine/src/parser.rs crates/sqlengine/src/plan/mod.rs crates/sqlengine/src/plan/logical.rs crates/sqlengine/src/plan/optimizer.rs crates/sqlengine/src/row.rs crates/sqlengine/src/schema.rs crates/sqlengine/src/value.rs

/root/repo/target/debug/deps/libdbgpt_sqlengine-a4c6c792f7e890bd.rlib: crates/sqlengine/src/lib.rs crates/sqlengine/src/catalog.rs crates/sqlengine/src/col.rs crates/sqlengine/src/csv.rs crates/sqlengine/src/engine.rs crates/sqlengine/src/error.rs crates/sqlengine/src/exec/mod.rs crates/sqlengine/src/exec/aggregate.rs crates/sqlengine/src/exec/executor.rs crates/sqlengine/src/exec/vectorized.rs crates/sqlengine/src/expr.rs crates/sqlengine/src/lexer.rs crates/sqlengine/src/parser.rs crates/sqlengine/src/plan/mod.rs crates/sqlengine/src/plan/logical.rs crates/sqlengine/src/plan/optimizer.rs crates/sqlengine/src/row.rs crates/sqlengine/src/schema.rs crates/sqlengine/src/value.rs

/root/repo/target/debug/deps/libdbgpt_sqlengine-a4c6c792f7e890bd.rmeta: crates/sqlengine/src/lib.rs crates/sqlengine/src/catalog.rs crates/sqlengine/src/col.rs crates/sqlengine/src/csv.rs crates/sqlengine/src/engine.rs crates/sqlengine/src/error.rs crates/sqlengine/src/exec/mod.rs crates/sqlengine/src/exec/aggregate.rs crates/sqlengine/src/exec/executor.rs crates/sqlengine/src/exec/vectorized.rs crates/sqlengine/src/expr.rs crates/sqlengine/src/lexer.rs crates/sqlengine/src/parser.rs crates/sqlengine/src/plan/mod.rs crates/sqlengine/src/plan/logical.rs crates/sqlengine/src/plan/optimizer.rs crates/sqlengine/src/row.rs crates/sqlengine/src/schema.rs crates/sqlengine/src/value.rs

crates/sqlengine/src/lib.rs:
crates/sqlengine/src/catalog.rs:
crates/sqlengine/src/col.rs:
crates/sqlengine/src/csv.rs:
crates/sqlengine/src/engine.rs:
crates/sqlengine/src/error.rs:
crates/sqlengine/src/exec/mod.rs:
crates/sqlengine/src/exec/aggregate.rs:
crates/sqlengine/src/exec/executor.rs:
crates/sqlengine/src/exec/vectorized.rs:
crates/sqlengine/src/expr.rs:
crates/sqlengine/src/lexer.rs:
crates/sqlengine/src/parser.rs:
crates/sqlengine/src/plan/mod.rs:
crates/sqlengine/src/plan/logical.rs:
crates/sqlengine/src/plan/optimizer.rs:
crates/sqlengine/src/row.rs:
crates/sqlengine/src/schema.rs:
crates/sqlengine/src/value.rs:
