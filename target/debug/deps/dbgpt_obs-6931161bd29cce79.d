/root/repo/target/debug/deps/dbgpt_obs-6931161bd29cce79.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libdbgpt_obs-6931161bd29cce79.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libdbgpt_obs-6931161bd29cce79.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profile.rs:
crates/obs/src/render.rs:
crates/obs/src/slo.rs:
crates/obs/src/trace.rs:
