/root/repo/target/debug/deps/proptest-269888e047d6a742.d: .scratch/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-269888e047d6a742.rlib: .scratch/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-269888e047d6a742.rmeta: .scratch/stubs/proptest/src/lib.rs

.scratch/stubs/proptest/src/lib.rs:
