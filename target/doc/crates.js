window.ALL_CRATES = ["dbgpt_sqlengine"];
//{"start":21,"fragment_lengths":[17]}