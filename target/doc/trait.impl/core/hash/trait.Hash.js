(function() {
    const implementors = Object.fromEntries([["dbgpt_sqlengine",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"enum\" href=\"dbgpt_sqlengine/value/enum.DataType.html\" title=\"enum dbgpt_sqlengine::value::DataType\">DataType</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"enum\" href=\"dbgpt_sqlengine/value/enum.GroupKey.html\" title=\"enum dbgpt_sqlengine::value::GroupKey\">GroupKey</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[567]}