(function() {
    const implementors = Object.fromEntries([["dbgpt_sqlengine",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"dbgpt_sqlengine/error/enum.SqlError.html\" title=\"enum dbgpt_sqlengine::error::SqlError\">SqlError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[299]}