/root/repo/target/release/deps/serde-80b5afc5b4a27292.d: .scratch/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-80b5afc5b4a27292.rmeta: .scratch/stubs/serde/src/lib.rs

.scratch/stubs/serde/src/lib.rs:
