/root/repo/target/release/deps/parking_lot-61a692dc3f61fb48.d: .scratch/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-61a692dc3f61fb48.rlib: .scratch/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-61a692dc3f61fb48.rmeta: .scratch/stubs/parking_lot/src/lib.rs

.scratch/stubs/parking_lot/src/lib.rs:
