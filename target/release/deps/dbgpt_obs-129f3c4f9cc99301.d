/root/repo/target/release/deps/dbgpt_obs-129f3c4f9cc99301.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libdbgpt_obs-129f3c4f9cc99301.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libdbgpt_obs-129f3c4f9cc99301.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profile.rs:
crates/obs/src/render.rs:
crates/obs/src/slo.rs:
crates/obs/src/trace.rs:
