/root/repo/target/release/deps/serde_json-58611e64267a3df8.d: .scratch/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-58611e64267a3df8.rmeta: .scratch/stubs/serde_json/src/lib.rs

.scratch/stubs/serde_json/src/lib.rs:
