/root/repo/target/release/deps/bench_sql_columnar-b21145f2276a9986.d: .scratch/harness/../../crates/bench/src/bin/bench_sql_columnar.rs Cargo.toml

/root/repo/target/release/deps/libbench_sql_columnar-b21145f2276a9986.rmeta: .scratch/harness/../../crates/bench/src/bin/bench_sql_columnar.rs Cargo.toml

.scratch/harness/../../crates/bench/src/bin/bench_sql_columnar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
