/root/repo/target/release/deps/rand-e83853ff7e8c11e8.d: .scratch/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-e83853ff7e8c11e8.rlib: .scratch/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-e83853ff7e8c11e8.rmeta: .scratch/stubs/rand/src/lib.rs

.scratch/stubs/rand/src/lib.rs:
