/root/repo/target/release/deps/dbgpt_obs-d4f9a178738fd1ce.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libdbgpt_obs-d4f9a178738fd1ce.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/profile.rs crates/obs/src/render.rs crates/obs/src/slo.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profile.rs:
crates/obs/src/render.rs:
crates/obs/src/slo.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
