/root/repo/target/release/deps/bench_sql_columnar-40446ce0d357c84a.d: .scratch/harness/../../crates/bench/src/bin/bench_sql_columnar.rs

/root/repo/target/release/deps/bench_sql_columnar-40446ce0d357c84a: .scratch/harness/../../crates/bench/src/bin/bench_sql_columnar.rs

.scratch/harness/../../crates/bench/src/bin/bench_sql_columnar.rs:
