/root/repo/target/release/deps/serde_json-c1f77c0e9d982d29.d: .scratch/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c1f77c0e9d982d29.rlib: .scratch/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c1f77c0e9d982d29.rmeta: .scratch/stubs/serde_json/src/lib.rs

.scratch/stubs/serde_json/src/lib.rs:
