/root/repo/target/release/deps/dbgpt_llm-2392dc10a5aa6bbd.d: crates/llm/src/lib.rs crates/llm/src/catalog.rs crates/llm/src/chat.rs crates/llm/src/engine.rs crates/llm/src/error.rs crates/llm/src/intern.rs crates/llm/src/latency.rs crates/llm/src/model.rs crates/llm/src/prefix.rs crates/llm/src/sim.rs crates/llm/src/skill.rs crates/llm/src/skills/mod.rs crates/llm/src/skills/extractive_qa.rs crates/llm/src/skills/generic.rs crates/llm/src/skills/planner.rs crates/llm/src/skills/summarize.rs crates/llm/src/skills/translate.rs crates/llm/src/stream.rs crates/llm/src/tokenizer.rs crates/llm/src/types.rs

/root/repo/target/release/deps/libdbgpt_llm-2392dc10a5aa6bbd.rlib: crates/llm/src/lib.rs crates/llm/src/catalog.rs crates/llm/src/chat.rs crates/llm/src/engine.rs crates/llm/src/error.rs crates/llm/src/intern.rs crates/llm/src/latency.rs crates/llm/src/model.rs crates/llm/src/prefix.rs crates/llm/src/sim.rs crates/llm/src/skill.rs crates/llm/src/skills/mod.rs crates/llm/src/skills/extractive_qa.rs crates/llm/src/skills/generic.rs crates/llm/src/skills/planner.rs crates/llm/src/skills/summarize.rs crates/llm/src/skills/translate.rs crates/llm/src/stream.rs crates/llm/src/tokenizer.rs crates/llm/src/types.rs

/root/repo/target/release/deps/libdbgpt_llm-2392dc10a5aa6bbd.rmeta: crates/llm/src/lib.rs crates/llm/src/catalog.rs crates/llm/src/chat.rs crates/llm/src/engine.rs crates/llm/src/error.rs crates/llm/src/intern.rs crates/llm/src/latency.rs crates/llm/src/model.rs crates/llm/src/prefix.rs crates/llm/src/sim.rs crates/llm/src/skill.rs crates/llm/src/skills/mod.rs crates/llm/src/skills/extractive_qa.rs crates/llm/src/skills/generic.rs crates/llm/src/skills/planner.rs crates/llm/src/skills/summarize.rs crates/llm/src/skills/translate.rs crates/llm/src/stream.rs crates/llm/src/tokenizer.rs crates/llm/src/types.rs

crates/llm/src/lib.rs:
crates/llm/src/catalog.rs:
crates/llm/src/chat.rs:
crates/llm/src/engine.rs:
crates/llm/src/error.rs:
crates/llm/src/intern.rs:
crates/llm/src/latency.rs:
crates/llm/src/model.rs:
crates/llm/src/prefix.rs:
crates/llm/src/sim.rs:
crates/llm/src/skill.rs:
crates/llm/src/skills/mod.rs:
crates/llm/src/skills/extractive_qa.rs:
crates/llm/src/skills/generic.rs:
crates/llm/src/skills/planner.rs:
crates/llm/src/skills/summarize.rs:
crates/llm/src/skills/translate.rs:
crates/llm/src/stream.rs:
crates/llm/src/tokenizer.rs:
crates/llm/src/types.rs:
