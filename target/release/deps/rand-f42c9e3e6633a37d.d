/root/repo/target/release/deps/rand-f42c9e3e6633a37d.d: .scratch/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-f42c9e3e6633a37d.rmeta: .scratch/stubs/rand/src/lib.rs

.scratch/stubs/rand/src/lib.rs:
