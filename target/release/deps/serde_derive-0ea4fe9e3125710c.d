/root/repo/target/release/deps/serde_derive-0ea4fe9e3125710c.d: .scratch/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-0ea4fe9e3125710c.so: .scratch/stubs/serde_derive/src/lib.rs

.scratch/stubs/serde_derive/src/lib.rs:
