/root/repo/target/release/deps/serde-33f597b3a48f98dc.d: .scratch/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-33f597b3a48f98dc.rlib: .scratch/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-33f597b3a48f98dc.rmeta: .scratch/stubs/serde/src/lib.rs

.scratch/stubs/serde/src/lib.rs:
